/**
 * @file
 * Hierarchical statistics registry in the gem5 spirit.
 *
 * Components register named stats -- scalars, per-lane vectors,
 * fixed-bin histograms, and formulas evaluated at dump time -- under
 * dotted hierarchical names ("chip.core3.dvfsTransitions",
 * "pv.mppCache.hitRate"). Registration is find-or-create, so repeated
 * runs (a sweep replaying many days into one registry) accumulate into
 * the same counters. The hot path is a plain double increment on a
 * reference obtained once; the registry itself is only walked at
 * dump/snapshot/reset time. Not thread-safe: parallel sweeps give each
 * worker its own registry and merge() them in task-index order, which
 * keeps every dump byte-identical at any thread count.
 */

#ifndef SOLARCORE_OBS_STATS_REGISTRY_HPP
#define SOLARCORE_OBS_STATS_REGISTRY_HPP

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace solarcore::obs {

class StatsRegistry;

/** Common base: name, description, reset and dump hooks. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~StatBase() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Zero the stat (formulas are stateless and ignore this). */
    virtual void reset() = 0;

    /** JSON fragment for the value (no key). */
    virtual std::string jsonValue(const StatsRegistry &reg) const = 0;

    /**
     * Flattened (name, value) rows for CSV dumps and snapshots --
     * vectors expand to name.0..name.N-1, histograms to per-bin rows.
     */
    virtual void flatten(const StatsRegistry &reg,
                         std::vector<std::pair<std::string, double>> &out)
        const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A scalar counter/value. Increment is a plain double add. */
class ScalarStat : public StatBase
{
  public:
    using StatBase::StatBase;

    ScalarStat &operator+=(double d) { value_ += d; return *this; }
    ScalarStat &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void reset() override { value_ = 0.0; }
    std::string jsonValue(const StatsRegistry &) const override;
    void flatten(const StatsRegistry &,
                 std::vector<std::pair<std::string, double>> &out)
        const override;

  private:
    double value_ = 0.0;
};

/** A fixed-lane vector of scalars (e.g. one lane per core). */
class VectorStat : public StatBase
{
  public:
    VectorStat(std::string name, std::string desc, std::size_t lanes)
        : StatBase(std::move(name), std::move(desc)), lanes_(lanes, 0.0)
    {}

    double &lane(std::size_t i) { return lanes_.at(i); }
    double lane(std::size_t i) const { return lanes_.at(i); }
    std::size_t lanes() const { return lanes_.size(); }
    double total() const;

    /** Grow to @p lanes (merging registries with different widths). */
    void ensureLanes(std::size_t lanes);

    void reset() override;
    std::string jsonValue(const StatsRegistry &) const override;
    void flatten(const StatsRegistry &,
                 std::vector<std::pair<std::string, double>> &out)
        const override;

  private:
    std::vector<double> lanes_;
};

/** Fixed-width histogram over [lo, hi); out-of-range samples clamp. */
class HistogramStat : public StatBase
{
  public:
    HistogramStat(std::string name, std::string desc, double lo, double hi,
                  std::size_t bins);

    void add(double x);
    /** Bulk-add @p n samples to bin @p i (registry merges). */
    void addBinCount(std::size_t i, std::uint64_t n);
    /** Fold another histogram's value sum in (registry merges). */
    void addSum(double sum) { sum_ += sum; }
    std::size_t bin(std::size_t i) const { return counts_.at(i); }
    std::size_t bins() const { return counts_.size(); }
    std::uint64_t total() const { return total_; }
    /** Sum of all observed sample values (OpenMetrics `_sum`). */
    double sum() const { return sum_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double binLow(std::size_t i) const;

    void reset() override;
    std::string jsonValue(const StatsRegistry &) const override;
    void flatten(const StatsRegistry &,
                 std::vector<std::pair<std::string, double>> &out)
        const override;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * A derived stat evaluated at dump time against the owning registry,
 * referencing operands by name ("hits" / ("hits"+"misses")). Because
 * operands are looked up rather than captured, formulas survive
 * registry merges unchanged.
 */
class FormulaStat : public StatBase
{
  public:
    using Fn = std::function<double(const StatsRegistry &)>;

    FormulaStat(std::string name, std::string desc, Fn fn)
        : StatBase(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value(const StatsRegistry &reg) const { return fn_(reg); }
    const Fn &fn() const { return fn_; }

    void reset() override {}
    std::string jsonValue(const StatsRegistry &reg) const override;
    void flatten(const StatsRegistry &reg,
                 std::vector<std::pair<std::string, double>> &out)
        const override;

  private:
    Fn fn_;
};

/** The registry: an ordered map of dotted names to stats. */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /**
     * Find-or-create accessors. Finding an existing stat of another
     * type under the same name is a caller bug and panics.
     */
    ScalarStat &scalar(const std::string &name,
                       const std::string &desc = "");
    VectorStat &vector(const std::string &name, std::size_t lanes,
                       const std::string &desc = "");
    HistogramStat &histogram(const std::string &name, double lo, double hi,
                             std::size_t bins,
                             const std::string &desc = "");
    FormulaStat &formula(const std::string &name, FormulaStat::Fn fn,
                         const std::string &desc = "");

    /** The stat registered under @p name, or nullptr. */
    const StatBase *find(std::string_view name) const;

    /**
     * Scalar value of @p name: scalar value, vector total, histogram
     * sample count, or formula evaluation; 0 if absent. The formula
     * operand accessor.
     */
    double value(std::string_view name) const;

    std::size_t size() const { return stats_.size(); }

    /** Visit every stat in name order (exporters). */
    void forEach(const std::function<void(const StatBase &)> &fn) const;

    /** Zero every resettable stat (tracking-period epochs). */
    void resetAll();

    /** Flattened (name, value) rows in name order. */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /**
     * Fold @p other into this registry: same-name scalar/vector/
     * histogram stats add, missing stats are created, formulas are
     * copied once (they recompute against the merged operands).
     */
    void merge(const StatsRegistry &other);

    /** One JSON object {"name": value, ...} in name order. */
    void dumpJson(std::ostream &os) const;

    /** `name,value` CSV rows (flattened) with a header line. */
    void dumpCsv(std::ostream &os) const;

  private:
    template <typename T, typename... Args>
    T &findOrCreate(const std::string &name, const std::string &desc,
                    Args &&...args);

    std::map<std::string, std::unique_ptr<StatBase>, std::less<>> stats_;
};

/**
 * Hierarchical naming helper: a (registry, dotted-prefix) pair whose
 * accessors prepend the prefix, so a component can register
 * "chip.core3.dvfsTransitions" as scope.sub("core3").scalar(...).
 */
class StatScope
{
  public:
    explicit StatScope(StatsRegistry &reg, std::string prefix = "")
        : reg_(&reg), prefix_(std::move(prefix))
    {}

    /** A child scope named prefix.name. */
    StatScope sub(const std::string &name) const;

    const std::string &prefix() const { return prefix_; }
    StatsRegistry &registry() const { return *reg_; }

    ScalarStat &
    scalar(const std::string &name, const std::string &desc = "") const
    {
        return reg_->scalar(qualify(name), desc);
    }

    VectorStat &
    vector(const std::string &name, std::size_t lanes,
           const std::string &desc = "") const
    {
        return reg_->vector(qualify(name), lanes, desc);
    }

    HistogramStat &
    histogram(const std::string &name, double lo, double hi,
              std::size_t bins, const std::string &desc = "") const
    {
        return reg_->histogram(qualify(name), lo, hi, bins, desc);
    }

    FormulaStat &
    formula(const std::string &name, FormulaStat::Fn fn,
            const std::string &desc = "") const
    {
        return reg_->formula(qualify(name), std::move(fn), desc);
    }

    /** prefix.name (or name at the root). */
    std::string qualify(const std::string &name) const;

  private:
    StatsRegistry *reg_;
    std::string prefix_;
};

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_STATS_REGISTRY_HPP
