#include "auditor.hpp"

#include <cmath>

#include "obs/json.hpp"
#include "obs/stats_registry.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace solarcore::obs {

const char *
auditCheckName(AuditCheck check)
{
    switch (check) {
      case AuditCheck::BudgetOvershoot:     return "budgetOvershoot";
      case AuditCheck::RailVoltage:         return "railVoltage";
      case AuditCheck::SocRange:            return "socRange";
      case AuditCheck::EnergyBalance:       return "energyBalance";
      case AuditCheck::PanelOperatingPoint: return "panelOperatingPoint";
      case AuditCheck::DvfsLegality:        return "dvfsLegality";
    }
    return "?";
}

bool
parseAuditMode(const std::string &token, AuditMode &out)
{
    if (token == "off") {
        out = AuditMode::Off;
        return true;
    }
    if (token == "count") {
        out = AuditMode::Count;
        return true;
    }
    if (token == "strict") {
        out = AuditMode::Strict;
        return true;
    }
    return false;
}

Auditor::Auditor(AuditorConfig config) : config_(config) {}

std::uint64_t
Auditor::count(AuditCheck check) const
{
    return counts_[static_cast<std::size_t>(check)];
}

void
Auditor::violation(AuditCheck check, double measured, double limit,
                   int core, const char *context)
{
    ++counts_[static_cast<std::size_t>(check)];
    ++totalViolations_;
    if (details_.size() < config_.maxDetails) {
        details_.push_back({check, nowMin_, measured, limit, core,
                            std::string(context ? context : "")});
    }
    if (trace_) {
        TraceEvent e;
        e.kind = EventKind::AuditViolation;
        e.arg0 = static_cast<std::uint8_t>(check);
        e.v0 = measured;
        e.v1 = limit;
        e.core = static_cast<std::int16_t>(core);
        trace_->emit(e);
    }
    if (config_.mode == AuditMode::Strict) {
        SC_FATAL("audit[strict]: ", auditCheckName(check), " at minute ",
                 nowMin_, ": measured ", measured, " vs limit ", limit,
                 core >= 0 ? " (core " + std::to_string(core) + ")" : "",
                 context ? std::string(" -- ") + context : "");
    }
}

bool
Auditor::checkBudget(double drawn_w, double budget_w, const char *context)
{
    const double limit = budget_w * (1.0 + config_.budgetToleranceFrac) +
        config_.budgetToleranceW;
    if (drawn_w <= limit)
        return true;
    violation(AuditCheck::BudgetOvershoot, drawn_w, limit, -1, context);
    return false;
}

bool
Auditor::checkRailVoltage(double rail_v, double nominal_v,
                          const char *context)
{
    const double dev = std::abs(rail_v - nominal_v);
    if (dev <= config_.railToleranceFrac * nominal_v)
        return true;
    violation(AuditCheck::RailVoltage, rail_v, nominal_v, -1, context);
    return false;
}

bool
Auditor::checkSocRange(double soc, const char *context)
{
    if (soc >= -config_.socTolerance &&
        soc <= 1.0 + config_.socTolerance)
        return true;
    violation(AuditCheck::SocRange, soc, 1.0, -1, context);
    return false;
}

bool
Auditor::checkEnergyBalance(double absorbed_wh, double stored_wh,
                            double delivered_wh, double lost_wh,
                            const char *context)
{
    const double accounted = stored_wh + delivered_wh + lost_wh;
    const double scale = std::max(absorbed_wh, 1e-6);
    if (std::abs(absorbed_wh - accounted) <=
        config_.balanceToleranceFrac * scale)
        return true;
    violation(AuditCheck::EnergyBalance, accounted, absorbed_wh, -1,
              context);
    return false;
}

bool
Auditor::checkPanelPoint(double solved_a, double curve_a, double scale_a,
                         const char *context)
{
    const double scale = std::max(std::abs(scale_a), 1e-6);
    if (std::abs(solved_a - curve_a) <=
        config_.curveToleranceFrac * scale)
        return true;
    violation(AuditCheck::PanelOperatingPoint, solved_a, curve_a, -1,
              context);
    return false;
}

bool
Auditor::checkDvfsLegality(int core, int level, int min_level,
                           int max_level, bool gated, bool gating_allowed,
                           const char *context)
{
    if (gated && !gating_allowed) {
        violation(AuditCheck::DvfsLegality, 1.0, 0.0, core, context);
        return false;
    }
    if (!gated && (level < min_level || level > max_level)) {
        violation(AuditCheck::DvfsLegality, static_cast<double>(level),
                  static_cast<double>(max_level), core, context);
        return false;
    }
    return true;
}

void
Auditor::foldInto(StatsRegistry &reg) const
{
    reg.scalar("audit.violations", "invariant violations, all checks") +=
        static_cast<double>(totalViolations_);
    reg.scalar("audit.stepsAudited", "simulation steps audited") +=
        static_cast<double>(stepsAudited_);
    for (std::size_t i = 0; i < kNumAuditChecks; ++i) {
        reg.scalar(std::string("audit.") +
                       auditCheckName(static_cast<AuditCheck>(i)),
                   "violations of this invariant") +=
            static_cast<double>(counts_[i]);
    }
}

void
Auditor::merge(const Auditor &other)
{
    totalViolations_ += other.totalViolations_;
    stepsAudited_ += other.stepsAudited_;
    for (std::size_t i = 0; i < kNumAuditChecks; ++i)
        counts_[i] += other.counts_[i];
    for (const auto &d : other.details_) {
        if (details_.size() >= config_.maxDetails)
            break;
        details_.push_back(d);
    }
}

void
Auditor::writeJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"solarcore-audit-v1\",\n  \"mode\": "
       << jsonString(config_.mode == AuditMode::Strict ? "strict"
                                                       : "count")
       << ",\n  \"steps_audited\": " << jsonNumber(stepsAudited_)
       << ",\n  \"violations\": " << jsonNumber(totalViolations_)
       << ",\n  \"by_check\": {";
    for (std::size_t i = 0; i < kNumAuditChecks; ++i) {
        os << (i ? ", " : "") << "\""
           << auditCheckName(static_cast<AuditCheck>(i))
           << "\": " << jsonNumber(counts_[i]);
    }
    os << "},\n  \"details\": [\n";
    for (std::size_t i = 0; i < details_.size(); ++i) {
        const auto &d = details_[i];
        os << "    {\"check\": " << jsonString(auditCheckName(d.check))
           << ", \"time_min\": " << jsonNumber(d.timeMin)
           << ", \"measured\": " << jsonNumber(d.measured)
           << ", \"limit\": " << jsonNumber(d.limit)
           << ", \"core\": "
           << jsonNumber(static_cast<double>(d.core))
           << ", \"context\": " << jsonString(d.context) << '}'
           << (i + 1 < details_.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

} // namespace solarcore::obs
