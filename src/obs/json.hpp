/**
 * @file
 * Minimal JSON emission helpers shared by the observability exporters
 * (stats dumps, trace files, run manifests). Writing only -- the
 * library never parses JSON. Numbers use std::to_chars shortest
 * round-trip formatting so exports are byte-stable across platforms
 * and thread counts; non-finite values degrade to null, which every
 * JSON consumer (and Perfetto) accepts.
 */

#ifndef SOLARCORE_OBS_JSON_HPP
#define SOLARCORE_OBS_JSON_HPP

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace solarcore::obs {

/** Shortest round-trip decimal form of @p v ("null" if not finite). */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, r.ptr);
}

/** Decimal form of an unsigned integer. */
inline std::string
jsonNumber(std::uint64_t v)
{
    char buf[24];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, r.ptr);
}

/** Decimal form of a signed integer. */
inline std::string
jsonNumber(std::int64_t v)
{
    char buf[24];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, r.ptr);
}

/** Append @p s to @p out with JSON string escaping (no quotes). */
inline void
jsonEscapeTo(std::string &out, std::string_view s)
{
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

/** @p s as a quoted, escaped JSON string literal. */
inline std::string
jsonString(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    jsonEscapeTo(out, s);
    out += '"';
    return out;
}

/**
 * Incremental writer for one JSON object: emits `"key":value` pairs
 * with the separating commas handled. Values passed via the typed
 * overloads; raw() embeds a pre-rendered JSON fragment (for nesting).
 */
class JsonObjectWriter
{
  public:
    explicit JsonObjectWriter(std::ostream &os) : os_(&os) { *os_ << '{'; }
    ~JsonObjectWriter() { close(); }

    JsonObjectWriter(const JsonObjectWriter &) = delete;
    JsonObjectWriter &operator=(const JsonObjectWriter &) = delete;

    void
    field(std::string_view key, std::string_view value)
    {
        raw(key, jsonString(value));
    }

    // A char* literal would otherwise prefer the bool overload (a
    // standard conversion beats the string_view constructor).
    void
    field(std::string_view key, const char *value)
    {
        raw(key, jsonString(value));
    }

    void
    field(std::string_view key, double value)
    {
        raw(key, jsonNumber(value));
    }

    void
    field(std::string_view key, std::uint64_t value)
    {
        raw(key, jsonNumber(value));
    }

    void
    field(std::string_view key, std::int64_t value)
    {
        raw(key, jsonNumber(value));
    }

    void
    field(std::string_view key, int value)
    {
        raw(key, jsonNumber(static_cast<std::int64_t>(value)));
    }

    void
    field(std::string_view key, bool value)
    {
        raw(key, value ? "true" : "false");
    }

    /** Emit `"key":` followed by @p fragment verbatim. */
    void
    raw(std::string_view key, std::string_view fragment)
    {
        if (!first_)
            *os_ << ',';
        first_ = false;
        *os_ << jsonString(key) << ':' << fragment;
    }

    void
    close()
    {
        if (!closed_) {
            *os_ << '}';
            closed_ = true;
        }
    }

  private:
    std::ostream *os_;
    bool first_ = true;
    bool closed_ = false;
};

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_JSON_HPP
