#include "telemetry.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"
#include "util/logging.hpp"

namespace solarcore::obs {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/** NaN-skipping min/max folds for the MinMax buckets. */
double
foldMin(double acc, double v)
{
    if (std::isnan(v))
        return acc;
    return std::isnan(acc) ? v : std::min(acc, v);
}

double
foldMax(double acc, double v)
{
    if (std::isnan(v))
        return acc;
    return std::isnan(acc) ? v : std::max(acc, v);
}

} // namespace

bool
parseTelemetryMode(const std::string &token, TelemetryMode &out)
{
    if (token == "every") {
        out = TelemetryMode::EveryN;
        return true;
    }
    if (token == "minmax") {
        out = TelemetryMode::MinMax;
        return true;
    }
    return false;
}

TelemetryRecorder::TelemetryRecorder(std::size_t every, TelemetryMode mode)
    : every_(every == 0 ? 1 : every), mode_(mode)
{}

TelemetryRecorder::ChannelId
TelemetryRecorder::channel(const std::string &name, const std::string &unit)
{
    for (std::size_t i = 0; i < channels_.size(); ++i)
        if (channels_[i].name == name)
            return i;
    SC_ASSERT(!frozen_,
              "telemetry: channel '", name,
              "' registered after sampling started");
    channels_.push_back({name, unit});
    current_.push_back(kNan);
    bucketMin_.push_back(kNan);
    bucketMax_.push_back(kNan);
    return channels_.size() - 1;
}

const std::string &
TelemetryRecorder::channelName(ChannelId id) const
{
    return channels_.at(id).name;
}

const std::string &
TelemetryRecorder::channelUnit(ChannelId id) const
{
    return channels_.at(id).unit;
}

void
TelemetryRecorder::beginStep(double time_min)
{
    SC_ASSERT(!inStep_, "telemetry: beginStep without endStep");
    frozen_ = true;
    inStep_ = true;
    std::fill(current_.begin(), current_.end(), kNan);
    if (bucketFill_ == 0)
        bucketStartMin_ = time_min;
    bucketEndMin_ = time_min;
}

void
TelemetryRecorder::endStep()
{
    SC_ASSERT(inStep_, "telemetry: endStep without beginStep");
    inStep_ = false;
    ++steps_;
    if (mode_ == TelemetryMode::EveryN) {
        // Commit the first step of every N-step window, so the very
        // first sample of a run is always retained.
        if ((steps_ - 1) % every_ == 0)
            commitRow(bucketEndMin_, current_);
        bucketFill_ = 0;
        return;
    }
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        bucketMin_[i] = foldMin(bucketMin_[i], current_[i]);
        bucketMax_[i] = foldMax(bucketMax_[i], current_[i]);
    }
    if (++bucketFill_ >= every_)
        flush();
}

void
TelemetryRecorder::flush()
{
    if (mode_ != TelemetryMode::MinMax || bucketFill_ == 0)
        return;
    // Two envelope rows per bucket: per-channel minima stamped at the
    // bucket start, maxima at the bucket end. Extremes always survive.
    commitRow(bucketStartMin_, bucketMin_);
    commitRow(bucketEndMin_, bucketMax_);
    std::fill(bucketMin_.begin(), bucketMin_.end(), kNan);
    std::fill(bucketMax_.begin(), bucketMax_.end(), kNan);
    bucketFill_ = 0;
}

double
TelemetryRecorder::rowTime(std::size_t row) const
{
    return times_.at(row);
}

double
TelemetryRecorder::value(std::size_t row, ChannelId id) const
{
    SC_ASSERT(row < times_.size() && id < channels_.size(),
              "telemetry: value() out of range");
    return data_[row * channels_.size() + id];
}

void
TelemetryRecorder::commitRow(double time_min, const std::vector<double> &row)
{
    times_.push_back(time_min);
    data_.insert(data_.end(), row.begin(), row.end());
}

void
TelemetryRecorder::writeHeader(std::ostream &os, bool unit_column) const
{
    if (unit_column)
        os << "unit,";
    os << "time_min";
    for (const auto &c : channels_) {
        os << ',' << c.name;
        if (!c.unit.empty())
            os << '[' << c.unit << ']';
    }
    os << '\n';
}

void
TelemetryRecorder::writeRow(std::ostream &os, std::size_t row) const
{
    os << jsonNumber(times_[row]);
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        const double v = data_[row * channels_.size() + c];
        os << ',';
        if (!std::isnan(v))
            os << jsonNumber(v);
    }
    os << '\n';
}

void
TelemetryRecorder::writeCsv(std::ostream &os)
{
    flush();
    writeHeader(os, false);
    for (std::size_t r = 0; r < times_.size(); ++r)
        writeRow(os, r);
}

void
TelemetryRecorder::writeCsvConcat(
    const std::vector<TelemetryRecorder *> &recorders, std::ostream &os)
{
    const TelemetryRecorder *schema = nullptr;
    for (auto *rec : recorders)
        if (rec) {
            schema = rec;
            break;
        }
    if (!schema)
        return;
    schema->writeHeader(os, true);
    std::size_t unit = 0;
    for (auto *rec : recorders) {
        if (!rec) {
            ++unit;
            continue;
        }
        SC_ASSERT(rec->channelCount() == schema->channelCount(),
                  "telemetry: concat with mismatched channel schemas");
        rec->flush();
        for (std::size_t r = 0; r < rec->times_.size(); ++r) {
            os << unit << ',';
            rec->writeRow(os, r);
        }
        ++unit;
    }
}

void
TelemetryRecorder::clear()
{
    times_.clear();
    data_.clear();
    steps_ = 0;
    bucketFill_ = 0;
    inStep_ = false;
    std::fill(bucketMin_.begin(), bucketMin_.end(), kNan);
    std::fill(bucketMax_.begin(), bucketMax_.end(), kNan);
}

} // namespace solarcore::obs
