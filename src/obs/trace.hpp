/**
 * @file
 * Structured event tracing for the simulation stack.
 *
 * Components append fixed-size typed records (re-track triggers with
 * cause, per-core DVFS changes with TPR rank, PCPG gate/ungate, ATS
 * grid switchovers, battery mode changes, MPPT tracking events) to a
 * preallocated ring buffer. Timestamps are simulated minutes since
 * local midnight, set once per step by the day driver (setNow), so
 * emitting an event is a couple of stores -- cheap enough to leave in
 * the controller's notch loop. Disabled tracing is a nullable-pointer
 * branch at every call site and costs nothing else.
 *
 * Exporters render merged event streams as JSONL (one object per
 * line) or as Chrome trace_event JSON loadable in Perfetto / about:
 * tracing, with per-core DVFS counter tracks derived from the change
 * events. Parallel sweeps give each worker its own buffer; merge()
 * orders events by (simulated time, track, sequence), which is
 * byte-identical at any thread count because track = task index.
 */

#ifndef SOLARCORE_OBS_TRACE_HPP
#define SOLARCORE_OBS_TRACE_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace solarcore::obs {

/** What happened. Payload field meaning is per-kind (see emitters). */
enum class EventKind : std::uint8_t {
    MpptTrack,       //!< one tracking event: i0=stepsUp, i1=stepsDown,
                     //!< v0=chip demand W, arg0=solarViable
    Retrack,         //!< tracking trigger: arg0=RetrackCause,
                     //!< v0=budget W, v1=chip demand W
    DvfsChange,      //!< per-core notch: core, i0=from level,
                     //!< i1=to level, arg0=TPR rank (1 = best),
                     //!< v0=delta power W, v1=step TPR
    Pcpg,            //!< core power gating: core, arg0=1 gate/0 ungate,
                     //!< v0=delta power W
    AtsTransfer,     //!< arg0=1 to solar / 0 to grid, v0=available W,
                     //!< i0=transfer count so far
    BatteryMode,     //!< arg0=BatteryMode, v0=state of charge [0..1]
    ThermalThrottle, //!< core, v0=die temp C
    ThreadMotion,    //!< workload swap: core=first, i0=second
    PeriodClose,     //!< tracking-period boundary: v0=mean budget W,
                     //!< v1=mean consumed W
    AuditViolation,  //!< invariant check failed: arg0=AuditCheck,
                     //!< v0=measured, v1=limit, core when per-core
};

/** Why a re-track fired (Retrack arg0). */
enum class RetrackCause : std::uint8_t {
    Periodic,    //!< tracking period expired
    SolarEntry,  //!< ATS just switched the chip onto the panel
    SupplyDelta, //!< panel budget moved past the re-track threshold
    DemandDelta, //!< chip demand drifted past the re-track threshold
};

/** Battery operating mode (BatteryMode arg0). */
enum class BatteryMode : std::uint8_t { Idle, Charge, Discharge };

/** Human-readable names used by both exporters. */
const char *eventKindName(EventKind kind);
const char *retrackCauseName(RetrackCause cause);
const char *batteryModeName(BatteryMode mode);

/** One fixed-size trace record. */
struct TraceEvent
{
    double timeMin = 0.0;    //!< simulated minutes since midnight
    double v0 = 0.0;         //!< per-kind payload (see EventKind)
    double v1 = 0.0;
    std::uint64_t seq = 0;   //!< per-buffer emission order
    std::int32_t i0 = 0;
    std::int32_t i1 = 0;
    std::int16_t core = -1;  //!< core index, -1 when chip-level
    std::int16_t track = 0;  //!< merge lane (task index in sweeps)
    EventKind kind = EventKind::MpptTrack;
    std::uint8_t arg0 = 0;
};

/**
 * Preallocated ring buffer of trace events. When full, the oldest
 * records are overwritten and counted as dropped -- tracing never
 * allocates on the simulation path after construction.
 */
class TraceBuffer
{
  public:
    /** @param capacity ring size in events (>= 1). */
    explicit TraceBuffer(std::size_t capacity = 1 << 16);

    /** Stamp for subsequent events [simulated minutes]. */
    void setNow(double minute) { nowMin_ = minute; }
    double now() const { return nowMin_; }

    /** Append @p e, stamping time and sequence number. */
    void
    emit(TraceEvent e)
    {
        e.timeMin = nowMin_;
        e.seq = nextSeq_++;
        ring_[head_] = e;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        if (size_ < ring_.size())
            ++size_;
        else
            ++dropped_;
    }

    std::size_t capacity() const { return ring_.size(); }
    std::size_t size() const { return size_; }
    std::uint64_t dropped() const { return dropped_; }
    bool empty() const { return size_ == 0; }

    /** The @p i-th retained event, oldest first. */
    const TraceEvent &at(std::size_t i) const;

    /**
     * Copy the newest events (oldest-of-the-tail first) into @p out,
     * at most @p max. Allocation- and exception-free so the crash
     * flight recorder can call it from a signal handler; reading a
     * buffer another thread is appending to yields a torn-but-bounded
     * best-effort tail, which is exactly what a post-mortem wants.
     * @return the number of events written
     */
    std::size_t snapshotTail(TraceEvent *out,
                             std::size_t max) const noexcept;

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    void clear();

  private:
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;   //!< next write slot
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t nextSeq_ = 0;
    double nowMin_ = 0.0;
};

/**
 * Merge per-worker buffers into one stream ordered by simulated time
 * (ties: track, then sequence). Each buffer's events are tagged with
 * its index as the track id, so the result is independent of which
 * thread produced which buffer.
 */
std::vector<TraceEvent>
mergeBuffers(const std::vector<const TraceBuffer *> &buffers);

/** Export one event stream as JSONL (one JSON object per line). */
void exportJsonl(const std::vector<TraceEvent> &events, std::ostream &os);

class TelemetryRecorder;

/**
 * Export as Chrome trace_event JSON (the Perfetto / about:tracing
 * format): instant events per record plus derived per-core DVFS-level
 * counter tracks. @p trackNames labels the tid lanes (defaults to
 * "track N"). Simulated time maps to trace microseconds. When
 * @p telemetry is given, its committed waveform rows are woven in as
 * one Perfetto counter track per channel.
 */
void exportChromeTrace(const std::vector<TraceEvent> &events,
                       std::ostream &os,
                       const std::vector<std::string> &trackNames = {},
                       TelemetryRecorder *telemetry = nullptr);

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_TRACE_HPP
