/**
 * @file
 * Runtime invariant auditor: physical sanity checks evaluated every
 * simulation step by the day drivers.
 *
 * The auditor itself is deliberately dumb about the physics -- each
 * check takes the already-measured quantities (the caller owns the
 * models) and decides pass/fail under a configurable tolerance:
 *
 *  - BudgetOvershoot    chip draw exceeds the delivered power budget
 *  - RailVoltage        converter output off its nominal set point
 *  - SocRange           battery state of charge outside [0, 1]
 *  - EnergyBalance      battery ledger fails closure over the day
 *  - PanelOperatingPoint solved panel point off the I-V curve
 *  - DvfsLegality       core level outside the table, or a gated core
 *                       while PCPG is disabled
 *
 * Violations are counted per check, the first few are kept with full
 * cause context, an AuditViolation trace event is emitted when a
 * trace sink is attached, and in Strict mode the process aborts with
 * the context in the message (--audit=strict turns a silent physics
 * regression into a red build). foldInto() surfaces the counters as
 * audit.* stats so campaign summaries can report per-unit violation
 * counts.
 */

#ifndef SOLARCORE_OBS_AUDITOR_HPP
#define SOLARCORE_OBS_AUDITOR_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace solarcore::obs {

class StatsRegistry;
class TraceBuffer;

/** The invariant families the auditor evaluates. */
enum class AuditCheck : std::uint8_t {
    BudgetOvershoot,
    RailVoltage,
    SocRange,
    EnergyBalance,
    PanelOperatingPoint,
    DvfsLegality,
};

inline constexpr std::size_t kNumAuditChecks = 6;

/** Stable token of a check ("budgetOvershoot", ...). */
const char *auditCheckName(AuditCheck check);

/** How violations are handled. */
enum class AuditMode : std::uint8_t {
    Off,    //!< auditor not constructed; zero cost
    Count,  //!< count + trace, never abort
    Strict, //!< first violation is fatal
};

/** Parse "off"/"count"/"strict". @return false on junk. */
bool parseAuditMode(const std::string &token, AuditMode &out);

/** Tolerances of the individual checks. */
struct AuditorConfig
{
    AuditMode mode = AuditMode::Count;
    double budgetToleranceFrac = 0.02; //!< relative budget headroom
    double budgetToleranceW = 0.5;     //!< absolute budget headroom [W]
    double railToleranceFrac = 0.05;   //!< rail deviation from nominal
    double socTolerance = 1e-9;        //!< SoC slack outside [0, 1]
    double balanceToleranceFrac = 0.02;//!< energy-closure slack
    double curveToleranceFrac = 0.01;  //!< panel point current slack
    std::size_t maxDetails = 16;       //!< violation contexts retained
};

/** One retained violation context. */
struct AuditViolationRecord
{
    AuditCheck check = AuditCheck::BudgetOvershoot;
    double timeMin = 0.0;   //!< simulated minutes since midnight
    double measured = 0.0;
    double limit = 0.0;
    int core = -1;          //!< core index, -1 when chip-level
    std::string context;    //!< caller-provided cause string
};

/** The per-run (or per-campaign-unit) invariant auditor. */
class Auditor
{
  public:
    explicit Auditor(AuditorConfig config = AuditorConfig());

    const AuditorConfig &config() const { return config_; }

    /** Attach a trace sink (nullptr detaches); violations then emit
     *  AuditViolation events stamped with the sink's simulated time. */
    void setTrace(TraceBuffer *trace) { trace_ = trace; }

    /** Stamp for subsequent violations [simulated minutes]. */
    void setNow(double minute) { nowMin_ = minute; }

    /**
     * Chip draw @p drawn_w against delivered budget @p budget_w [W].
     * @return true when within tolerance
     */
    bool checkBudget(double drawn_w, double budget_w, const char *context);

    /** Rail voltage @p rail_v against its nominal set point. */
    bool checkRailVoltage(double rail_v, double nominal_v,
                          const char *context);

    /** Battery state of charge in [0, 1]. */
    bool checkSocRange(double soc, const char *context);

    /**
     * Battery ledger closure: absorbed == stored + delivered + lost,
     * within tolerance scaled by @p scale_wh (use the absorbed total).
     */
    bool checkEnergyBalance(double absorbed_wh, double stored_wh,
                            double delivered_wh, double lost_wh,
                            const char *context);

    /**
     * Solved panel operating point on the I-V curve: @p solved_a vs.
     * the curve's @p curve_a at the same voltage, relative to
     * @p scale_a (use the short-circuit current).
     */
    bool checkPanelPoint(double solved_a, double curve_a, double scale_a,
                         const char *context);

    /** Core DVFS/gating state legality. */
    bool checkDvfsLegality(int core, int level, int min_level,
                           int max_level, bool gated, bool gating_allowed,
                           const char *context);

    std::uint64_t violationCount() const { return totalViolations_; }
    std::uint64_t count(AuditCheck check) const;
    std::uint64_t stepsAudited() const { return stepsAudited_; }

    /** Count one audited simulation step (per-unit normalization). */
    void countStep() { ++stepsAudited_; }

    /** The first maxDetails violation contexts, in emission order. */
    const std::vector<AuditViolationRecord> &details() const
    {
        return details_;
    }

    /** Fold counters into @p reg as audit.* stats. */
    void foldInto(StatsRegistry &reg) const;

    /** Merge another auditor's counters/details (task-index order). */
    void merge(const Auditor &other);

    /** JSON report: mode, per-check counts, retained contexts. */
    void writeJson(std::ostream &os) const;

  private:
    /** Record a violation; aborts in Strict mode. */
    void violation(AuditCheck check, double measured, double limit,
                   int core, const char *context);

    AuditorConfig config_;
    TraceBuffer *trace_ = nullptr;
    double nowMin_ = 0.0;
    std::uint64_t counts_[kNumAuditChecks] = {};
    std::uint64_t totalViolations_ = 0;
    std::uint64_t stepsAudited_ = 0;
    std::vector<AuditViolationRecord> details_;
};

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_AUDITOR_HPP
