/**
 * @file
 * Request-scoped distributed spans: the per-request counterpart of the
 * PR 2 event tracer.
 *
 * A *trace* is one request's life across threads and processes: a
 * 64-bit trace id stamped by the client (or head-sampled by the
 * server), a tree of spans (span id + parent id) named after the
 * stages the request passes through (io-read, admission, queue-wait,
 * service, per-unit simulation, aggregation, reply), each with a
 * monotonic [startNs, endNs) interval and a handful of typed
 * attributes (unit-cache hit/miss, resolved PV kernel, shed reason).
 *
 * Layering:
 *
 *   RequestTrace -- a bounded, reallocation-free staging buffer owned
 *     by one request. Spans are opened/closed while the request moves
 *     between the IO thread and a worker; at request end the buffer is
 *     either committed or discarded, which is what makes tail-biased
 *     sampling ("always keep slow/shed/error requests") free: the
 *     decision happens when the outcome is known.
 *
 *   SpanSink -- the process-wide bounded collector. commit() appends
 *     under a mutex and counts drops once full; exporters snapshot it.
 *     Forked campaign workers serialize SpanRecords over the worker
 *     pipe (the records are flat PODs) and the parent commits them
 *     into its own sink, so a multi-process shard stitches into one
 *     trace: CLOCK_MONOTONIC is shared across fork on Linux.
 *
 * Exports: JSONL ("solarcore-span-v1", one span per line, ids as
 * 16-hex strings because u64 does not survive JSON doubles) and a
 * Perfetto/Chrome trace with one process track per trace id and one
 * thread lane per span lane (worker index). Both exporters sort spans
 * by (trace, start, id) so file bytes do not depend on commit order.
 *
 * With no trace active every hook is a null-pointer check; the serve
 * and campaign hot paths stay inside the <1% tracing-off bench gate.
 */

#ifndef SOLARCORE_OBS_SPAN_HPP
#define SOLARCORE_OBS_SPAN_HPP

#include <cstdint>
#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace solarcore::obs {

inline constexpr std::size_t kSpanNameBytes = 32;
inline constexpr std::size_t kSpanAttrKeyBytes = 16;
inline constexpr std::size_t kSpanAttrTextBytes = 40;
inline constexpr std::size_t kSpanMaxAttrs = 4;

/** One typed span attribute (fixed-size: records stay flat PODs). */
struct SpanAttr
{
    enum class Kind : std::uint8_t
    {
        None = 0,
        Int,
        Double,
        Bool,
        Text,
    };

    Kind kind = Kind::None;
    char key[kSpanAttrKeyBytes] = {};
    std::int64_t i = 0;
    double d = 0.0;
    char text[kSpanAttrTextBytes] = {};
};

/**
 * One completed (or in-flight) span. Flat POD: forked campaign
 * workers ship these raw over the worker pipe ('T' frames) and the
 * same-machine native-endian contract of the pipe protocol applies.
 */
struct SpanRecord
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentId = 0; //!< 0 = root span of the trace
    std::int64_t startNs = 0;   //!< CLOCK_MONOTONIC
    std::int64_t endNs = 0;     //!< 0 while still open
    std::uint32_t lane = 0;     //!< render lane (worker index)
    std::uint32_t attrCount = 0;
    char name[kSpanNameBytes] = {};

    SpanAttr attrs[kSpanMaxAttrs];

    void setName(std::string_view name_text);

    /** Typed attribute setters; silently drop past kSpanMaxAttrs. */
    void attr(const char *key, std::int64_t value);
    void attr(const char *key, double value);
    void attr(const char *key, bool value);
    void attr(const char *key, std::string_view value);

    // A string literal would otherwise prefer the bool overload (a
    // standard conversion beats the string_view constructor).
    void
    attr(const char *key, const char *value)
    {
        attr(key, std::string_view(value));
    }

    double durationNs() const
    {
        return static_cast<double>(endNs - startNs);
    }

  private:
    SpanAttr *nextAttr(const char *key);
};

/** Monotonic span timestamp [ns]; one timebase across fork(). */
std::int64_t spanNowNs();

/** splitmix64 finalizer: uniform non-sequential ids from a counter. */
std::uint64_t mixId(std::uint64_t v);

/** A fresh non-zero trace id (clock + process-wide counter, mixed). */
std::uint64_t newTraceId();

/** @p id as fixed-width 16-digit lowercase hex. */
std::string spanIdHex(std::uint64_t id);

/** Parse a spanIdHex()-style id (1..16 hex digits). */
bool parseSpanIdHex(std::string_view text, std::uint64_t &out);

/**
 * Bounded per-request span staging buffer. Not thread-safe: a request
 * is handled by one thread at a time (IO thread, then a worker), and
 * the buffer moves with it. Capacity is reserved up front so
 * SpanRecord pointers stay stable while spans are open.
 */
class RequestTrace
{
  public:
    static constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

    explicit RequestTrace(std::size_t max_spans = 256);

    /** Activate for @p trace_id (0 deactivates); clears prior spans. */
    void begin(std::uint64_t trace_id);

    /** Deactivate and discard any staged spans. */
    void reset();

    bool active() const { return traceId_ != 0; }
    std::uint64_t traceId() const { return traceId_; }

    /** Salt folded into span-id generation (forked workers pass their
     *  worker index so ids cannot collide across processes). */
    void setIdSalt(std::uint64_t salt) { salt_ = salt; }

    /** Default lane stamped on spans opened here. */
    void setLane(std::uint32_t lane) { lane_ = lane; }

    /**
     * Open a span (start = now). @return its index, or kNoSpan when
     * inactive or full (full buffers count dropped spans).
     */
    std::size_t openSpan(const char *name, std::uint64_t parent_id = 0);

    /**
     * The staged span at @p index (nullptr for kNoSpan). The pointer
     * is invalidated by the next openSpan()/push() (the buffer grows
     * lazily) -- fetch, write, and drop it.
     */
    SpanRecord *span(std::size_t index);

    /** Stamp endNs = now on a still-open span. */
    void closeSpan(std::size_t index);

    /** Span id of the staged span at @p index (0 for kNoSpan). */
    std::uint64_t spanId(std::size_t index);

    /** Append an externally-built record (cross-process import). */
    void push(const SpanRecord &record);

    const std::vector<SpanRecord> &spans() const { return spans_; }
    std::uint64_t droppedSpans() const { return dropped_; }

  private:
    std::uint64_t nextSpanId();

    std::vector<SpanRecord> spans_;
    std::size_t maxSpans_;
    std::uint64_t traceId_ = 0;
    std::uint64_t salt_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint32_t lane_ = 0;
};

/**
 * RAII span over a RequestTrace. Inactive traces (or a full buffer)
 * degrade to a no-op: one pointer test per call.
 */
class SpanScope
{
  public:
    SpanScope(RequestTrace *trace, const char *name,
              std::uint64_t parent_id = 0)
        : trace_(trace),
          index_(trace ? trace->openSpan(name, parent_id)
                       : RequestTrace::kNoSpan)
    {
    }

    ~SpanScope() { close(); }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    /** Span id for parenting children (0 when inactive). */
    std::uint64_t id() const
    {
        return trace_ ? trace_->spanId(index_) : 0;
    }

    template <typename V>
    void
    attr(const char *key, V value)
    {
        if (SpanRecord *s = trace_ ? trace_->span(index_) : nullptr)
            s->attr(key, value);
    }

    void
    close()
    {
        if (trace_) {
            trace_->closeSpan(index_);
            trace_ = nullptr;
        }
    }

  private:
    RequestTrace *trace_;
    std::size_t index_;
};

/** Aggregate counters of one SpanSink. */
struct SpanSinkCounters
{
    std::uint64_t spans = 0;          //!< currently buffered
    std::uint64_t committedTraces = 0;
    std::uint64_t committedSpans = 0;
    std::uint64_t droppedSpans = 0;   //!< sink-full + staging drops
};

/** Process-wide bounded, thread-safe span collector. */
class SpanSink
{
  public:
    explicit SpanSink(std::size_t max_spans = 1u << 16);

    /** Append @p trace's staged spans (and its drop count); clears
     *  the staging buffer either way. */
    void commit(RequestTrace &trace);

    /** Append raw records (cross-process import path). */
    void commit(const SpanRecord *records, std::size_t count);

    std::vector<SpanRecord> snapshot() const;
    SpanSinkCounters counters() const;

  private:
    mutable std::mutex mutex_;
    std::vector<SpanRecord> spans_;
    std::size_t maxSpans_;
    SpanSinkCounters counters_;
};

/**
 * JSONL export, one "solarcore-span-v1" object per line, sorted by
 * (trace, start, id) for byte-stable output.
 */
void exportSpansJsonl(std::vector<SpanRecord> spans, std::ostream &os);

/**
 * Perfetto/Chrome trace export: one process track per trace id
 * ("trace <hex>"), one thread lane per span lane, complete ('X')
 * events carrying span/parent ids and attributes as args.
 */
void exportSpansChromeTrace(std::vector<SpanRecord> spans,
                            std::ostream &os);

/**
 * Write @p spans to @p jsonl_path and/or @p perfetto_path (empty
 * paths skipped). @return false with @p error on the first failing
 * file.
 */
bool writeSpanExports(const std::vector<SpanRecord> &spans,
                      const std::string &jsonl_path,
                      const std::string &perfetto_path,
                      std::string &error);

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_SPAN_HPP
