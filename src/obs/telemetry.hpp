/**
 * @file
 * Per-timestep waveform telemetry for the simulation stack.
 *
 * A TelemetryRecorder holds a set of named, typed, pre-registered
 * channels (panel power/voltage/current, MPP reference, converter
 * ratio, rail voltage, per-core frequency/voltage/power/IPC/TPR, chip
 * power vs. budget, battery state of charge). The day drivers sample
 * every channel once per simulation step:
 *
 *   rec.beginStep(minute);
 *   rec.set(chanPanelPower, p);
 *   ...
 *   rec.endStep();
 *
 * Channels not set during a step stay NaN (rendered as empty CSV
 * cells). Registration is only allowed before the first step so the
 * column schema is fixed for the whole run -- this is what lets a
 * campaign concatenate per-unit recorders into one columnar file.
 *
 * Decimation keeps long campaigns tractable:
 *  - EveryN commits one of every N steps (N=1 keeps everything);
 *  - MinMax buckets N steps and commits two rows per bucket carrying
 *    each channel's in-bucket minimum and maximum, so extremes (cloud
 *    transients, DVFS spikes) survive arbitrary decimation even
 *    though the two rows are per-channel envelopes rather than one
 *    consistent operating point.
 *
 * Export targets: columnar CSV (one time column plus one column per
 * channel) and Perfetto counter tracks woven into the Chrome trace
 * exporter (see trace.hpp).
 */

#ifndef SOLARCORE_OBS_TELEMETRY_HPP
#define SOLARCORE_OBS_TELEMETRY_HPP

#include <cstddef>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace solarcore::obs {

/** How a recorder thins the per-step sample stream. */
enum class TelemetryMode {
    EveryN, //!< keep one of every N steps
    MinMax, //!< keep per-channel min and max of every N-step bucket
};

/** Parse "every"/"minmax" (case-sensitive). @return false on junk. */
bool parseTelemetryMode(const std::string &token, TelemetryMode &out);

/** A per-step waveform recorder with pre-registered channels. */
class TelemetryRecorder
{
  public:
    using ChannelId = std::size_t;

    /**
     * @param every decimation factor N (>= 1)
     * @param mode  how the N-step window collapses to committed rows
     */
    explicit TelemetryRecorder(std::size_t every = 1,
                               TelemetryMode mode = TelemetryMode::EveryN);

    /**
     * Register (find-or-create) a channel. Must happen before the
     * first beginStep(); re-registering an existing name returns the
     * same id, which is how repeated days in one run share a schema.
     */
    ChannelId channel(const std::string &name,
                      const std::string &unit = "");

    std::size_t channelCount() const { return channels_.size(); }
    const std::string &channelName(ChannelId id) const;
    const std::string &channelUnit(ChannelId id) const;

    /** Begin a sample at @p time_min simulated minutes. */
    void beginStep(double time_min);

    /** Record @p value for @p id within the current step. */
    void
    set(ChannelId id, double value)
    {
        current_[id] = value;
    }

    /** Commit the current step into the decimation window. */
    void endStep();

    /**
     * Flush a partially filled decimation bucket (MinMax mode). The
     * exporters call this; day drivers may call it at day end so the
     * dusk tail is never dropped.
     */
    void flush();

    /** Committed rows so far (flush() to include a partial bucket). */
    std::size_t rowCount() const { return times_.size(); }

    /** Steps observed (before decimation). */
    std::size_t stepCount() const { return steps_; }

    std::size_t every() const { return every_; }
    TelemetryMode mode() const { return mode_; }

    /** Time of committed row @p row [simulated minutes]. */
    double rowTime(std::size_t row) const;

    /** Value of channel @p id in committed row @p row (may be NaN). */
    double value(std::size_t row, ChannelId id) const;

    /**
     * Columnar CSV: "time_min,<chan>[unit],..." header then one row
     * per committed sample; NaN cells render empty. Flushes first.
     */
    void writeCsv(std::ostream &os);

    /**
     * Concatenate @p recorders (task-index order) into one CSV with a
     * leading "unit" column. All recorders must share the schema of
     * the first; a campaign guarantees this by registering the same
     * channel superset in every day driver.
     */
    static void
    writeCsvConcat(const std::vector<TelemetryRecorder *> &recorders,
                   std::ostream &os);

    /** Drop all committed rows and pending state (keeps channels). */
    void clear();

  private:
    struct Channel
    {
        std::string name;
        std::string unit;
    };

    void commitRow(double time_min, const std::vector<double> &row);
    void writeHeader(std::ostream &os, bool unit_column) const;
    void writeRow(std::ostream &os, std::size_t row) const;

    std::vector<Channel> channels_;
    std::vector<double> current_;   //!< the in-progress step
    std::vector<double> bucketMin_; //!< MinMax accumulators
    std::vector<double> bucketMax_;
    double bucketStartMin_ = 0.0;
    double bucketEndMin_ = 0.0;
    std::size_t bucketFill_ = 0;    //!< steps in the open bucket
    std::size_t steps_ = 0;
    std::size_t every_;
    TelemetryMode mode_;
    bool inStep_ = false;
    bool frozen_ = false;           //!< schema locked by first step

    std::vector<double> times_;     //!< committed row times
    std::vector<double> data_;      //!< rows * channels, row-major
};

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_TELEMETRY_HPP
