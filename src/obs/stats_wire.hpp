/**
 * @file
 * Binary serialization of a StatsRegistry for cross-process merges.
 *
 * The multi-process campaign runner forks worker processes; each
 * worker accumulates its shard's counters into its own registry and
 * streams the serialized form back over a pipe, where the parent folds
 * it into the merged registry with the same semantics as
 * StatsRegistry::merge(). Scalars, vectors and histograms carry their
 * values verbatim (doubles as raw little-endian bytes, so the decoded
 * value is bit-identical); formulas cannot carry their lambdas across
 * a process boundary, so the wire records only name + description and
 * the receiver reconstructs the function through a caller-supplied
 * resolver (the day drivers expose core::dayFormulaByName). Unknown
 * formula names are skipped with a warning rather than failing the
 * merge -- a missing derived stat is recoverable, a lost counter is
 * not.
 *
 * The format is same-machine, same-build IPC (parent and child are
 * the same binary); it makes no attempt at cross-architecture
 * portability, and a leading version byte rejects mixed-build decode.
 */

#ifndef SOLARCORE_OBS_STATS_WIRE_HPP
#define SOLARCORE_OBS_STATS_WIRE_HPP

#include <functional>
#include <string>
#include <string_view>

#include "obs/stats_registry.hpp"

namespace solarcore::obs {

/** Maps a formula stat's wire name to its function; empty = unknown. */
using FormulaResolver =
    std::function<FormulaStat::Fn(std::string_view name)>;

/** Serialize every stat of @p reg (name order) into a byte string. */
std::string serializeRegistry(const StatsRegistry &reg);

/**
 * Decode @p blob and fold it into @p into with merge() semantics:
 * same-name scalars/vectors/histograms add, missing stats are created,
 * formulas are resolved by name through @p resolve (may be null).
 * @return false with @p error set on a malformed or mismatched blob
 * (in which case @p into may have been partially updated).
 */
bool mergeSerializedRegistry(std::string_view blob, StatsRegistry &into,
                             const FormulaResolver &resolve,
                             std::string &error);

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_STATS_WIRE_HPP
