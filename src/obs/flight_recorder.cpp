#include "flight_recorder.hpp"

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace solarcore::obs {

namespace {

constexpr std::size_t kPathMax = 4096;
constexpr std::size_t kKeyMax = 128;
constexpr std::size_t kMaxSlots = 256;
constexpr std::size_t kMaxTraceTail = 256;
constexpr std::size_t kMaxScopes = 64;

/** Per-thread in-flight unit context. A thread claims a slot once and
 *  keeps it; `active` gates what the crash path reports. */
struct UnitSlot
{
    std::atomic<bool> claimed{false};
    std::atomic<bool> active{false};
    char key[kKeyMax] = {};
    const TraceBuffer *trace = nullptr;
};

struct State
{
    std::atomic<bool> installed{false};
    std::atomic<bool> written{false};
    char outPath[kPathMax] = {};
    char tmpPath[kPathMax] = {};
    char manifest[kPathMax] = {};
    std::size_t traceTail = 64;
    UnitSlot slots[kMaxSlots];
    FatalHook previousHook = nullptr;
};

State &
state()
{
    static State s;
    return s;
}

thread_local int t_slot = -1;

void
copyBounded(char *dst, std::size_t cap, const char *src)
{
    std::size_t i = 0;
    if (src)
        for (; i + 1 < cap && src[i]; ++i)
            dst[i] = src[i];
    dst[i] = '\0';
}

// --------------------------------------------- signal-safe rendering

/** Buffered write(2) sink; every method is async-signal-safe. */
struct SigWriter
{
    int fd = -1;
    char buf[512];
    std::size_t len = 0;

    void
    flush()
    {
        std::size_t off = 0;
        while (off < len) {
            const ssize_t n = ::write(fd, buf + off, len - off);
            if (n <= 0)
                break;
            off += static_cast<std::size_t>(n);
        }
        len = 0;
    }

    void
    put(char c)
    {
        if (len == sizeof(buf))
            flush();
        buf[len++] = c;
    }

    void
    raw(const char *s)
    {
        for (; s && *s; ++s)
            put(*s);
    }

    /** A JSON string literal; unsafe bytes degrade to '_' rather than
     *  growing an escape table in a signal handler. */
    void
    str(const char *s)
    {
        put('"');
        for (; s && *s; ++s) {
            const unsigned char c = static_cast<unsigned char>(*s);
            if (c == '"' || c == '\\' || c < 0x20)
                put('_');
            else
                put(static_cast<char>(c));
        }
        put('"');
    }

    void
    u64(std::uint64_t v)
    {
        char digits[20];
        std::size_t n = 0;
        do {
            digits[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v > 0);
        while (n > 0)
            put(digits[--n]);
    }

    void
    i64(std::int64_t v)
    {
        if (v < 0) {
            put('-');
            u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
        } else {
            u64(static_cast<std::uint64_t>(v));
        }
    }

    /** Fixed 6-decimal rendering; non-finite and out-of-range values
     *  become null to keep the document valid JSON. */
    void
    dbl(double v)
    {
        if (!std::isfinite(v) || std::fabs(v) >= 9.0e15) {
            raw("null");
            return;
        }
        if (v < 0) {
            put('-');
            v = -v;
        }
        const auto whole = static_cast<std::uint64_t>(v);
        auto frac =
            static_cast<std::uint64_t>((v - static_cast<double>(whole)) *
                                           1e6 +
                                       0.5);
        std::uint64_t carry = whole;
        if (frac >= 1000000) {
            frac -= 1000000;
            ++carry;
        }
        u64(carry);
        put('.');
        char digits[6];
        for (int i = 5; i >= 0; --i) {
            digits[i] = static_cast<char>('0' + frac % 10);
            frac /= 10;
        }
        for (const char d : digits)
            put(d);
    }
};

// Signal-handler scratch: static so the handler allocates nothing.
TraceEvent g_tail[kMaxTraceTail];
const char *g_scopes[kMaxScopes];

void
writeEvent(SigWriter &w, const TraceEvent &e)
{
    w.raw("{\"t_min\":");
    w.dbl(e.timeMin);
    w.raw(",\"kind\":");
    w.str(eventKindName(e.kind));
    w.raw(",\"core\":");
    w.i64(e.core);
    w.raw(",\"i0\":");
    w.i64(e.i0);
    w.raw(",\"i1\":");
    w.i64(e.i1);
    w.raw(",\"arg0\":");
    w.u64(e.arg0);
    w.raw(",\"v0\":");
    w.dbl(e.v0);
    w.raw(",\"v1\":");
    w.dbl(e.v1);
    w.raw(",\"seq\":");
    w.u64(e.seq);
    w.put('}');
}

bool
renderPostmortem(const char *reason, const char *detail)
{
    State &s = state();
    const int fd = ::open(s.tmpPath, O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        return false;

    SigWriter w;
    w.fd = fd;
    w.raw("{\"schema\":\"solarcore-postmortem-v1\",\"reason\":");
    w.str(reason);
    w.raw(",\"detail\":");
    w.str(detail);
    w.raw(",\"manifest\":");
    w.str(s.manifest);

    // The crashing thread's open profiler scopes, outermost first.
    w.raw(",\"profile_stack\":[");
    if (const Profiler *prof = Profiler::current()) {
        const std::size_t n = prof->openScopeNames(g_scopes, kMaxScopes);
        for (std::size_t i = 0; i < n; ++i) {
            if (i)
                w.put(',');
            w.str(g_scopes[i]);
        }
    }
    w.put(']');

    // Every in-flight unit, with the tail of its trace ring. Slots of
    // other threads may be mid-update; bounded-torn reads are fine in
    // a post-mortem.
    w.raw(",\"units\":[");
    bool first = true;
    for (std::size_t i = 0; i < kMaxSlots; ++i) {
        UnitSlot &slot = s.slots[i];
        if (!slot.active.load(std::memory_order_acquire))
            continue;
        if (!first)
            w.put(',');
        first = false;
        w.raw("{\"key\":");
        w.str(slot.key);
        w.raw(",\"trace\":[");
        if (slot.trace != nullptr) {
            std::size_t max = s.traceTail;
            if (max > kMaxTraceTail)
                max = kMaxTraceTail;
            const std::size_t n = slot.trace->snapshotTail(g_tail, max);
            for (std::size_t e = 0; e < n; ++e) {
                if (e)
                    w.put(',');
                writeEvent(w, g_tail[e]);
            }
        }
        w.raw("]}");
    }
    w.raw("]}\n");
    w.flush();
    ::close(fd);
    return ::rename(s.tmpPath, s.outPath) == 0;
}

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGBUS:  return "SIGBUS";
      case SIGILL:  return "SIGILL";
      case SIGFPE:  return "SIGFPE";
      case SIGABRT: return "SIGABRT";
      default:      return "signal";
    }
}

void
crashHandler(int sig)
{
    FlightRecorder::writePostmortem("signal", signalName(sig));
    // SA_RESETHAND restored the default disposition on entry; re-raise
    // so the process still dies with the original signal.
    ::raise(sig);
}

void
fatalHook(LogLevel level, const char *msg)
{
    FlightRecorder::writePostmortem(
        level == LogLevel::Panic ? "panic" : "fatal", msg);
    if (const FatalHook prev = state().previousHook)
        prev(level, msg);
}

constexpr int kSignals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};

} // namespace

void
FlightRecorder::install(const FlightRecorderConfig &config)
{
    State &s = state();
    copyBounded(s.outPath, sizeof(s.outPath), config.outputPath.c_str());
    const std::string tmp = config.outputPath + ".tmp";
    copyBounded(s.tmpPath, sizeof(s.tmpPath), tmp.c_str());
    s.traceTail = config.traceTail;
    s.written.store(false);
    if (s.installed.exchange(true))
        return;

    struct sigaction sa = {};
    sa.sa_handler = crashHandler;
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    for (const int sig : kSignals)
        sigaction(sig, &sa, nullptr);
    s.previousHook = setFatalHook(fatalHook);
}

void
FlightRecorder::uninstall()
{
    State &s = state();
    if (!s.installed.exchange(false))
        return;
    struct sigaction sa = {};
    sa.sa_handler = SIG_DFL;
    sigemptyset(&sa.sa_mask);
    for (const int sig : kSignals)
        sigaction(sig, &sa, nullptr);
    setFatalHook(s.previousHook);
    s.previousHook = nullptr;
}

bool
FlightRecorder::installed()
{
    return state().installed.load();
}

void
FlightRecorder::setManifestPath(const std::string &path)
{
    copyBounded(state().manifest, sizeof(state().manifest),
                path.c_str());
}

void
FlightRecorder::beginUnit(const char *key, const TraceBuffer *trace)
{
    State &s = state();
    if (!s.installed.load(std::memory_order_relaxed))
        return;
    if (t_slot < 0) {
        for (std::size_t i = 0; i < kMaxSlots; ++i) {
            bool expected = false;
            if (s.slots[i].claimed.compare_exchange_strong(expected,
                                                           true)) {
                t_slot = static_cast<int>(i);
                break;
            }
        }
        if (t_slot < 0)
            return; // more live threads than slots: drop context
    }
    UnitSlot &slot = s.slots[static_cast<std::size_t>(t_slot)];
    slot.active.store(false, std::memory_order_release);
    copyBounded(slot.key, sizeof(slot.key), key);
    slot.trace = trace;
    slot.active.store(true, std::memory_order_release);
}

void
FlightRecorder::endUnit()
{
    State &s = state();
    if (t_slot < 0)
        return;
    UnitSlot &slot = s.slots[static_cast<std::size_t>(t_slot)];
    slot.active.store(false, std::memory_order_release);
    slot.trace = nullptr;
}

bool
FlightRecorder::writePostmortem(const char *reason, const char *detail)
{
    State &s = state();
    if (s.outPath[0] == '\0')
        return false;
    if (s.written.exchange(true))
        return false; // reentry / second fault: first report wins
    return renderPostmortem(reason, detail);
}

} // namespace solarcore::obs
