#include "stats_wire.hpp"

#include <cstdint>
#include <cstring>

#include "util/logging.hpp"

namespace solarcore::obs {

namespace {

constexpr unsigned char kWireVersion = 1;

void
putU32(std::string &out, std::uint32_t v)
{
    char buf[4];
    std::memcpy(buf, &v, sizeof(v));
    out.append(buf, sizeof(buf));
}

void
putU64(std::string &out, std::uint64_t v)
{
    char buf[8];
    std::memcpy(buf, &v, sizeof(v));
    out.append(buf, sizeof(buf));
}

void
putF64(std::string &out, double v)
{
    char buf[8];
    std::memcpy(buf, &v, sizeof(v));
    out.append(buf, sizeof(buf));
}

void
putString(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

/** Bounds-checked forward reader over the wire blob. */
class Cursor
{
  public:
    explicit Cursor(std::string_view data) : data_(data) {}

    bool failed() const { return failed_; }
    bool atEnd() const { return pos_ == data_.size(); }

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    double
    f64()
    {
        double v = 0.0;
        raw(&v, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (failed_ || data_.size() - pos_ < n) {
            failed_ = true;
            return {};
        }
        std::string s(data_.substr(pos_, n));
        pos_ += n;
        return s;
    }

  private:
    void
    raw(void *dst, std::size_t n)
    {
        if (failed_ || data_.size() - pos_ < n) {
            failed_ = true;
            std::memset(dst, 0, n);
            return;
        }
        std::memcpy(dst, data_.data() + pos_, n);
        pos_ += n;
    }

    std::string_view data_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace

std::string
serializeRegistry(const StatsRegistry &reg)
{
    std::string out;
    out.push_back(static_cast<char>(kWireVersion));
    putU32(out, static_cast<std::uint32_t>(reg.size()));
    reg.forEach([&out](const StatBase &stat) {
        if (const auto *sc = dynamic_cast<const ScalarStat *>(&stat)) {
            out.push_back('s');
            putString(out, stat.name());
            putString(out, stat.desc());
            putF64(out, sc->value());
        } else if (const auto *v =
                       dynamic_cast<const VectorStat *>(&stat)) {
            out.push_back('v');
            putString(out, stat.name());
            putString(out, stat.desc());
            putU32(out, static_cast<std::uint32_t>(v->lanes()));
            for (std::size_t i = 0; i < v->lanes(); ++i)
                putF64(out, v->lane(i));
        } else if (const auto *h =
                       dynamic_cast<const HistogramStat *>(&stat)) {
            out.push_back('h');
            putString(out, stat.name());
            putString(out, stat.desc());
            putF64(out, h->lo());
            putF64(out, h->hi());
            putU32(out, static_cast<std::uint32_t>(h->bins()));
            for (std::size_t i = 0; i < h->bins(); ++i)
                putU64(out, h->bin(i));
            putF64(out, h->sum());
        } else if (dynamic_cast<const FormulaStat *>(&stat) != nullptr) {
            out.push_back('f');
            putString(out, stat.name());
            putString(out, stat.desc());
        }
    });
    return out;
}

bool
mergeSerializedRegistry(std::string_view blob, StatsRegistry &into,
                        const FormulaResolver &resolve, std::string &error)
{
    Cursor c(blob);
    if (c.u8() != kWireVersion) {
        error = "stats wire: unsupported version";
        return false;
    }
    const std::uint32_t count = c.u32();
    for (std::uint32_t n = 0; n < count; ++n) {
        const char type = static_cast<char>(c.u8());
        const std::string name = c.str();
        const std::string desc = c.str();
        if (c.failed())
            break;
        switch (type) {
        case 's':
            into.scalar(name, desc) += c.f64();
            break;
        case 'v': {
            const std::uint32_t lanes = c.u32();
            auto &dst = into.vector(name, lanes, desc);
            dst.ensureLanes(lanes);
            for (std::uint32_t i = 0; i < lanes && !c.failed(); ++i)
                dst.lane(i) += c.f64();
            break;
        }
        case 'h': {
            const double lo = c.f64();
            const double hi = c.f64();
            const std::uint32_t bins = c.u32();
            if (c.failed())
                break;
            auto &dst = into.histogram(name, lo, hi, bins, desc);
            if (dst.bins() != bins || dst.lo() != lo || dst.hi() != hi) {
                error = "stats wire: histogram '" + name +
                    "' shape mismatch";
                return false;
            }
            for (std::uint32_t i = 0; i < bins && !c.failed(); ++i)
                dst.addBinCount(i, c.u64());
            dst.addSum(c.f64());
            break;
        }
        case 'f': {
            FormulaStat::Fn fn = resolve ? resolve(name) : nullptr;
            if (fn)
                into.formula(name, std::move(fn), desc);
            else
                SC_WARN_ONCE("stats wire: no resolver for formula '",
                             name, "'; dropped from merged registry");
            break;
        }
        default:
            error = "stats wire: unknown stat type";
            return false;
        }
        if (c.failed())
            break;
    }
    if (c.failed() || !c.atEnd()) {
        error = "stats wire: truncated or trailing payload";
        return false;
    }
    return true;
}

} // namespace solarcore::obs
