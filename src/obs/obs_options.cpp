#include "obs_options.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/manifest.hpp"
#include "obs/stats_registry.hpp"
#include "util/logging.hpp"

namespace solarcore::obs {

namespace {

bool
takeValue(std::string_view arg, std::string_view key, std::string &out)
{
    if (arg.rfind(key, 0) != 0)
        return false;
    out = std::string(arg.substr(key.size()));
    return true;
}

bool
hasSuffix(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
        s.substr(s.size() - suffix.size()) == suffix;
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        SC_WARN("obs: cannot open output file '", path, "'");
    return os;
}

} // namespace

bool
ObsOptions::consume(std::string_view arg)
{
    std::string buf;
    if (takeValue(arg, "--stats-out=", statsOut) ||
        takeValue(arg, "--trace-out=", traceOut) ||
        takeValue(arg, "--manifest-out=", manifestOut))
        return true;
    if (takeValue(arg, "--trace-buffer=", buf)) {
        const long n = std::strtol(buf.c_str(), nullptr, 10);
        if (n <= 0)
            SC_FATAL("--trace-buffer: expected a positive event count, "
                     "got '", buf, "'");
        traceBufferCap = static_cast<std::size_t>(n);
        return true;
    }
    return false;
}

void
ObsOptions::writeStats(const StatsRegistry &reg) const
{
    if (statsOut.empty())
        return;
    auto os = openOut(statsOut);
    if (!os)
        return;
    if (hasSuffix(statsOut, ".csv"))
        reg.dumpCsv(os);
    else
        reg.dumpJson(os);
}

void
ObsOptions::writeTrace(const std::vector<TraceEvent> &events,
                       const std::vector<std::string> &trackNames) const
{
    if (traceOut.empty())
        return;
    auto os = openOut(traceOut);
    if (!os)
        return;
    if (hasSuffix(traceOut, ".jsonl"))
        exportJsonl(events, os);
    else
        exportChromeTrace(events, os, trackNames);
}

void
ObsOptions::writeManifest(RunManifest &manifest) const
{
    std::string path = manifestOut;
    if (path.empty() && !statsOut.empty())
        path = statsOut + ".manifest.json";
    if (path.empty() && !traceOut.empty())
        path = traceOut + ".manifest.json";
    if (path.empty())
        return;
    manifest.writeFile(path);
}

} // namespace solarcore::obs
