#include "obs_options.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/manifest.hpp"
#include "obs/profiler.hpp"
#include "obs/stats_registry.hpp"
#include "util/logging.hpp"

namespace solarcore::obs {

namespace {

bool
takeValue(std::string_view arg, std::string_view key, std::string &out)
{
    if (arg.rfind(key, 0) != 0)
        return false;
    out = std::string(arg.substr(key.size()));
    return true;
}

bool
hasSuffix(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
        s.substr(s.size() - suffix.size()) == suffix;
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        SC_WARN("obs: cannot open output file '", path, "'");
    return os;
}

} // namespace

bool
ObsOptions::consume(std::string_view arg)
{
    std::string buf;
    if (takeValue(arg, "--stats-out=", statsOut) ||
        takeValue(arg, "--trace-out=", traceOut) ||
        takeValue(arg, "--manifest-out=", manifestOut) ||
        takeValue(arg, "--telemetry-out=", telemetryOut) ||
        takeValue(arg, "--profile-out=", profileOut) ||
        takeValue(arg, "--audit-out=", auditOut) ||
        takeValue(arg, "--metrics-out=", metricsOut) ||
        takeValue(arg, "--postmortem-out=", postmortemOut))
        return true;
    if (takeValue(arg, "--metrics-port=", buf)) {
        char *end = nullptr;
        const long n = std::strtol(buf.c_str(), &end, 10);
        if (buf.empty() || (end && *end != '\0') || n < 0 || n > 65535)
            SC_FATAL("--metrics-port: expected a port in [0, 65535], "
                     "got '", buf, "'");
        metricsPort = static_cast<int>(n);
        return true;
    }
    if (takeValue(arg, "--trace-buffer=", buf)) {
        const long n = std::strtol(buf.c_str(), nullptr, 10);
        if (n <= 0)
            SC_FATAL("--trace-buffer: expected a positive event count, "
                     "got '", buf, "'");
        traceBufferCap = static_cast<std::size_t>(n);
        return true;
    }
    if (takeValue(arg, "--telemetry-every=", buf)) {
        const long n = std::strtol(buf.c_str(), nullptr, 10);
        if (n <= 0)
            SC_FATAL("--telemetry-every: expected a positive step count, "
                     "got '", buf, "'");
        telemetryEvery = static_cast<std::size_t>(n);
        return true;
    }
    if (takeValue(arg, "--telemetry-mode=", buf)) {
        if (!parseTelemetryMode(buf, telemetryMode))
            SC_FATAL("--telemetry-mode: expected 'every' or 'minmax', "
                     "got '", buf, "'");
        return true;
    }
    if (takeValue(arg, "--audit=", buf)) {
        if (!parseAuditMode(buf, audit))
            SC_FATAL("--audit: expected 'off', 'count' or 'strict', "
                     "got '", buf, "'");
        return true;
    }
    return false;
}

void
ObsOptions::writeStats(const StatsRegistry &reg) const
{
    if (statsOut.empty())
        return;
    auto os = openOut(statsOut);
    if (!os)
        return;
    if (hasSuffix(statsOut, ".csv"))
        reg.dumpCsv(os);
    else
        reg.dumpJson(os);
}

void
ObsOptions::writeTrace(const std::vector<TraceEvent> &events,
                       const std::vector<std::string> &trackNames,
                       TelemetryRecorder *telemetry) const
{
    if (traceOut.empty())
        return;
    auto os = openOut(traceOut);
    if (!os)
        return;
    if (hasSuffix(traceOut, ".jsonl"))
        exportJsonl(events, os);
    else
        exportChromeTrace(events, os, trackNames, telemetry);
}

void
ObsOptions::writeTelemetry(TelemetryRecorder &recorder) const
{
    if (telemetryOut.empty())
        return;
    auto os = openOut(telemetryOut);
    if (!os)
        return;
    recorder.writeCsv(os);
}

void
ObsOptions::writeTelemetryConcat(
    const std::vector<TelemetryRecorder *> &recs) const
{
    if (telemetryOut.empty())
        return;
    auto os = openOut(telemetryOut);
    if (!os)
        return;
    TelemetryRecorder::writeCsvConcat(recs, os);
}

void
ObsOptions::writeProfile(const Profiler &profiler) const
{
    if (profileOut.empty())
        return;
    if (auto os = openOut(profileOut))
        profiler.writeJson(os);
    if (auto os = openOut(profileOut + ".folded"))
        profiler.writeCollapsed(os);
}

void
ObsOptions::writeAudit(const Auditor &auditor) const
{
    if (auditOut.empty())
        return;
    if (auto os = openOut(auditOut))
        auditor.writeJson(os);
}

void
ObsOptions::writeManifest(RunManifest &manifest) const
{
    std::string path = manifestOut;
    for (const std::string *out :
         {&statsOut, &traceOut, &telemetryOut, &profileOut, &auditOut}) {
        if (path.empty() && !out->empty())
            path = *out + ".manifest.json";
    }
    if (path.empty())
        return;
    manifest.writeFile(path);
}

void
ObsOptions::recordSidecars(RunManifest &manifest,
                           TelemetryRecorder *telemetry,
                           const Profiler *profiler,
                           const Auditor *auditor) const
{
    manifest.set("peak_rss_bytes", peakRssBytes());
    if (telemetry && !telemetryOut.empty()) {
        telemetry->flush();
        manifest.set("telemetry_out", telemetryOut);
        manifest.set("telemetry_rows",
                     static_cast<std::uint64_t>(telemetry->rowCount()));
        manifest.set("telemetry_steps",
                     static_cast<std::uint64_t>(telemetry->stepCount()));
    }
    if (profiler && !profileOut.empty()) {
        manifest.set("profile_out", profileOut);
        manifest.set("profile_total_us",
                     static_cast<double>(profiler->totalNs()) * 1e-3);
    }
    if (auditor) {
        if (!auditOut.empty())
            manifest.set("audit_out", auditOut);
        manifest.set("audit_violations", auditor->violationCount());
        manifest.set("audit_steps", auditor->stepsAudited());
    }
}

} // namespace solarcore::obs
