#include "trace.hpp"

#include <algorithm>
#include <cmath>

#include "obs/auditor.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "util/logging.hpp"

namespace solarcore::obs {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::MpptTrack:       return "mppt_track";
      case EventKind::Retrack:         return "retrack";
      case EventKind::DvfsChange:      return "dvfs_change";
      case EventKind::Pcpg:            return "pcpg";
      case EventKind::AtsTransfer:     return "ats_transfer";
      case EventKind::BatteryMode:     return "battery_mode";
      case EventKind::ThermalThrottle: return "thermal_throttle";
      case EventKind::ThreadMotion:    return "thread_motion";
      case EventKind::PeriodClose:     return "period_close";
      case EventKind::AuditViolation:  return "audit_violation";
    }
    return "?";
}

const char *
retrackCauseName(RetrackCause cause)
{
    switch (cause) {
      case RetrackCause::Periodic:    return "periodic";
      case RetrackCause::SolarEntry:  return "solar_entry";
      case RetrackCause::SupplyDelta: return "supply_delta";
      case RetrackCause::DemandDelta: return "demand_delta";
    }
    return "?";
}

const char *
batteryModeName(BatteryMode mode)
{
    switch (mode) {
      case BatteryMode::Idle:      return "idle";
      case BatteryMode::Charge:    return "charge";
      case BatteryMode::Discharge: return "discharge";
    }
    return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity))
{}

const TraceEvent &
TraceBuffer::at(std::size_t i) const
{
    SC_ASSERT(i < size_, "TraceBuffer::at: out of range");
    // Oldest event: head_ when the ring has wrapped, slot 0 otherwise.
    const std::size_t start = size_ == ring_.size() ? head_ : 0;
    return ring_[(start + i) % ring_.size()];
}

std::size_t
TraceBuffer::snapshotTail(TraceEvent *out, std::size_t max) const noexcept
{
    // Clamp every index against the (fixed) capacity: a concurrent
    // writer may move head_/size_ under us, and the tail is allowed to
    // be torn, but the reads must stay in bounds.
    const std::size_t cap = ring_.size();
    const std::size_t retained = size_ < cap ? size_ : cap;
    const std::size_t n = retained < max ? retained : max;
    const std::size_t start = retained == cap ? head_ % cap : 0;
    for (std::size_t i = 0; i < n; ++i)
        out[i] = ring_[(start + (retained - n) + i) % cap];
    return n;
}

std::vector<TraceEvent>
TraceBuffer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(at(i));
    return out;
}

void
TraceBuffer::clear()
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    nextSeq_ = 0;
}

std::vector<TraceEvent>
mergeBuffers(const std::vector<const TraceBuffer *> &buffers)
{
    std::vector<TraceEvent> out;
    std::size_t total = 0;
    for (const TraceBuffer *b : buffers)
        total += b ? b->size() : 0;
    out.reserve(total);
    for (std::size_t t = 0; t < buffers.size(); ++t) {
        if (!buffers[t])
            continue;
        for (std::size_t i = 0; i < buffers[t]->size(); ++i) {
            TraceEvent e = buffers[t]->at(i);
            e.track = static_cast<std::int16_t>(t);
            out.push_back(e);
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.timeMin != b.timeMin)
                             return a.timeMin < b.timeMin;
                         if (a.track != b.track)
                             return a.track < b.track;
                         return a.seq < b.seq;
                     });
    return out;
}

namespace {

/** The per-kind payload fields as JSON object members. */
void
writePayload(JsonObjectWriter &w, const TraceEvent &e)
{
    switch (e.kind) {
      case EventKind::MpptTrack:
        w.field("steps_up", e.i0);
        w.field("steps_down", e.i1);
        w.field("demand_w", e.v0);
        w.field("solar_viable", e.arg0 != 0);
        break;
      case EventKind::Retrack:
        w.field("cause",
                retrackCauseName(static_cast<RetrackCause>(e.arg0)));
        w.field("budget_w", e.v0);
        w.field("demand_w", e.v1);
        break;
      case EventKind::DvfsChange:
        w.field("core", e.core);
        w.field("from_level", e.i0);
        w.field("to_level", e.i1);
        w.field("tpr_rank", static_cast<int>(e.arg0));
        w.field("delta_power_w", e.v0);
        w.field("tpr", e.v1);
        break;
      case EventKind::Pcpg:
        w.field("core", e.core);
        w.field("gated", e.arg0 != 0);
        w.field("delta_power_w", e.v0);
        break;
      case EventKind::AtsTransfer:
        w.field("to_solar", e.arg0 != 0);
        w.field("available_w", e.v0);
        w.field("transfers", e.i0);
        break;
      case EventKind::BatteryMode:
        w.field("mode", batteryModeName(static_cast<BatteryMode>(e.arg0)));
        w.field("soc", e.v0);
        break;
      case EventKind::ThermalThrottle:
        w.field("core", e.core);
        w.field("die_temp_c", e.v0);
        break;
      case EventKind::ThreadMotion:
        w.field("core_a", e.core);
        w.field("core_b", e.i0);
        break;
      case EventKind::PeriodClose:
        w.field("budget_w", e.v0);
        w.field("consumed_w", e.v1);
        break;
      case EventKind::AuditViolation:
        w.field("check",
                auditCheckName(static_cast<AuditCheck>(e.arg0)));
        w.field("measured", e.v0);
        w.field("limit", e.v1);
        w.field("core", e.core);
        break;
    }
}

/** Simulated minutes -> Chrome trace microseconds. */
std::string
chromeTs(double minute)
{
    return jsonNumber(minute * 60e6);
}

} // namespace

void
exportJsonl(const std::vector<TraceEvent> &events, std::ostream &os)
{
    for (const TraceEvent &e : events) {
        JsonObjectWriter w(os);
        w.field("t_min", e.timeMin);
        w.field("track", static_cast<int>(e.track));
        w.field("kind", eventKindName(e.kind));
        writePayload(w, e);
        w.close();
        os << '\n';
    }
}

void
exportChromeTrace(const std::vector<TraceEvent> &events, std::ostream &os,
                  const std::vector<std::string> &trackNames,
                  TelemetryRecorder *telemetry)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Metadata: process plus one named thread lane per track.
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"args\":{\"name\":\"solarcore\"}}";
    std::int16_t max_track = 0;
    for (const TraceEvent &e : events)
        max_track = std::max(max_track, e.track);
    for (std::int16_t t = 0; t <= max_track; ++t) {
        const std::string name = t < static_cast<std::int16_t>(
                                         trackNames.size())
            ? trackNames[static_cast<std::size_t>(t)]
            : "track " + std::to_string(t);
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << t << ",\"args\":{\"name\":" << jsonString(name) << "}}";
    }

    for (const TraceEvent &e : events) {
        // The instant record itself.
        sep();
        os << "{\"name\":" << jsonString(eventKindName(e.kind))
           << ",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
           << chromeTs(e.timeMin) << ",\"pid\":1,\"tid\":" << e.track
           << ",\"args\":";
        {
            JsonObjectWriter w(os);
            writePayload(w, e);
            w.close();
        }
        os << "}";

        // Derived counter tracks, viewable as graphs in Perfetto.
        if (e.kind == EventKind::DvfsChange || e.kind == EventKind::Pcpg) {
            const int level = e.kind == EventKind::Pcpg
                ? (e.arg0 ? -1 : 0)
                : e.i1;
            sep();
            os << "{\"name\":\"core" << e.core
               << ".level\",\"ph\":\"C\",\"ts\":" << chromeTs(e.timeMin)
               << ",\"pid\":1,\"tid\":" << e.track
               << ",\"args\":{\"level\":" << level << "}}";
        } else if (e.kind == EventKind::PeriodClose) {
            sep();
            os << "{\"name\":\"power\",\"ph\":\"C\",\"ts\":"
               << chromeTs(e.timeMin) << ",\"pid\":1,\"tid\":" << e.track
               << ",\"args\":{\"budget_w\":" << jsonNumber(e.v0)
               << ",\"consumed_w\":" << jsonNumber(e.v1) << "}}";
        }
    }

    // Waveform channels as per-channel counter tracks: every committed
    // telemetry row becomes one counter sample per non-NaN channel.
    if (telemetry) {
        telemetry->flush();
        for (std::size_t r = 0; r < telemetry->rowCount(); ++r) {
            const std::string ts = chromeTs(telemetry->rowTime(r));
            for (std::size_t c = 0; c < telemetry->channelCount(); ++c) {
                const double v = telemetry->value(r, c);
                if (std::isnan(v))
                    continue;
                sep();
                os << "{\"name\":"
                   << jsonString(telemetry->channelName(c))
                   << ",\"ph\":\"C\",\"ts\":" << ts
                   << ",\"pid\":1,\"tid\":0,\"args\":{\"value\":"
                   << jsonNumber(v) << "}}";
            }
        }
    }
    os << "\n]}\n";
}

} // namespace solarcore::obs
