#include "span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>

#include "obs/json.hpp"

namespace solarcore::obs {
namespace {

void
copyBounded(char *dst, std::size_t cap, std::string_view src)
{
    const std::size_t n = std::min(src.size(), cap - 1);
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

/** Stable export order: commit order depends on thread timing, file
 *  bytes must not. */
void
sortSpans(std::vector<SpanRecord> &spans)
{
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.traceId != b.traceId)
                      return a.traceId < b.traceId;
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.spanId < b.spanId;
              });
}

void
appendAttrsJson(std::string &out, const SpanRecord &s)
{
    out += '{';
    for (std::uint32_t i = 0; i < s.attrCount; ++i) {
        const SpanAttr &a = s.attrs[i];
        if (i != 0)
            out += ',';
        out += jsonString(a.key);
        out += ':';
        switch (a.kind) {
        case SpanAttr::Kind::Int:
            out += jsonNumber(a.i);
            break;
        case SpanAttr::Kind::Double:
            out += jsonNumber(a.d);
            break;
        case SpanAttr::Kind::Bool:
            out += a.i != 0 ? "true" : "false";
            break;
        case SpanAttr::Kind::Text:
        case SpanAttr::Kind::None:
            out += jsonString(a.text);
            break;
        }
    }
    out += '}';
}

} // namespace

void
SpanRecord::setName(std::string_view name_text)
{
    copyBounded(name, sizeof name, name_text);
}

SpanAttr *
SpanRecord::nextAttr(const char *key)
{
    if (attrCount >= kSpanMaxAttrs)
        return nullptr;
    SpanAttr &a = attrs[attrCount++];
    copyBounded(a.key, sizeof a.key, key);
    return &a;
}

void
SpanRecord::attr(const char *key, std::int64_t value)
{
    if (SpanAttr *a = nextAttr(key)) {
        a->kind = SpanAttr::Kind::Int;
        a->i = value;
    }
}

void
SpanRecord::attr(const char *key, double value)
{
    if (SpanAttr *a = nextAttr(key)) {
        a->kind = SpanAttr::Kind::Double;
        a->d = value;
    }
}

void
SpanRecord::attr(const char *key, bool value)
{
    if (SpanAttr *a = nextAttr(key)) {
        a->kind = SpanAttr::Kind::Bool;
        a->i = value ? 1 : 0;
    }
}

void
SpanRecord::attr(const char *key, std::string_view value)
{
    if (SpanAttr *a = nextAttr(key)) {
        a->kind = SpanAttr::Kind::Text;
        copyBounded(a->text, sizeof a->text, value);
    }
}

std::int64_t
spanNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
mixId(std::uint64_t v)
{
    // splitmix64 finalizer (Steele/Lea/Flood).
    v += 0x9e3779b97f4a7c15ull;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return v ^ (v >> 31);
}

std::uint64_t
newTraceId()
{
    static std::atomic<std::uint64_t> counter{0};
    const auto wall = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    const auto seq = counter.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t id = mixId(wall ^ (seq << 48) ^
                             static_cast<std::uint64_t>(spanNowNs()));
    if (id == 0)
        id = 1;
    return id;
}

std::string
spanIdHex(std::uint64_t id)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[id & 0xf];
        id >>= 4;
    }
    return out;
}

bool
parseSpanIdHex(std::string_view text, std::uint64_t &out)
{
    if (text.empty() || text.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (const char c : text) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(digit);
    }
    out = v;
    return true;
}

namespace {
/** First lazy chunk of a RequestTrace span buffer (see begin()). */
constexpr std::size_t kInitialReserve = 16;
} // namespace

RequestTrace::RequestTrace(std::size_t max_spans)
    : maxSpans_(max_spans == 0 ? 1 : max_spans)
{
}

void
RequestTrace::begin(std::uint64_t trace_id)
{
    spans_.clear();
    dropped_ = 0;
    seq_ = 0;
    traceId_ = trace_id;
    // Reserve only a small first chunk: a RequestTrace is built per
    // request on the serve hot path, and eagerly sizing for maxSpans_
    // (~90 KB at the default 256) taxed every cache-hit reply. The
    // buffer grows geometrically on demand; span() pointers are
    // documented as invalidated by openSpan()/push().
    if (traceId_ != 0 && spans_.capacity() < kInitialReserve)
        spans_.reserve(std::min(kInitialReserve, maxSpans_));
}

void
RequestTrace::reset()
{
    spans_.clear();
    dropped_ = 0;
    seq_ = 0;
    traceId_ = 0;
}

std::uint64_t
RequestTrace::nextSpanId()
{
    std::uint64_t id = mixId(traceId_ ^ salt_ ^ ++seq_);
    if (id == 0)
        id = 1;
    return id;
}

std::size_t
RequestTrace::openSpan(const char *name, std::uint64_t parent_id)
{
    if (traceId_ == 0)
        return kNoSpan;
    if (spans_.size() >= maxSpans_) {
        ++dropped_;
        return kNoSpan;
    }
    spans_.emplace_back();
    SpanRecord &s = spans_.back();
    s.traceId = traceId_;
    s.spanId = nextSpanId();
    s.parentId = parent_id;
    s.startNs = spanNowNs();
    s.lane = lane_;
    s.setName(name);
    return spans_.size() - 1;
}

SpanRecord *
RequestTrace::span(std::size_t index)
{
    return index < spans_.size() ? &spans_[index] : nullptr;
}

void
RequestTrace::closeSpan(std::size_t index)
{
    if (SpanRecord *s = span(index))
        if (s->endNs == 0)
            s->endNs = spanNowNs();
}

std::uint64_t
RequestTrace::spanId(std::size_t index)
{
    const SpanRecord *s = span(index);
    return s ? s->spanId : 0;
}

void
RequestTrace::push(const SpanRecord &record)
{
    if (traceId_ == 0)
        return;
    if (spans_.size() >= maxSpans_) {
        ++dropped_;
        return;
    }
    spans_.push_back(record);
}

SpanSink::SpanSink(std::size_t max_spans)
    : maxSpans_(max_spans == 0 ? 1 : max_spans)
{
}

void
SpanSink::commit(RequestTrace &trace)
{
    if (trace.active() && !trace.spans().empty())
        commit(trace.spans().data(), trace.spans().size());
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.droppedSpans += trace.droppedSpans();
    trace.reset();
}

void
SpanSink::commit(const SpanRecord *records, std::size_t count)
{
    if (count == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.committedTraces;
    for (std::size_t i = 0; i < count; ++i) {
        if (spans_.size() >= maxSpans_) {
            counters_.droppedSpans += count - i;
            break;
        }
        spans_.push_back(records[i]);
        ++counters_.committedSpans;
    }
    counters_.spans = spans_.size();
}

std::vector<SpanRecord>
SpanSink::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

SpanSinkCounters
SpanSink::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
exportSpansJsonl(std::vector<SpanRecord> spans, std::ostream &os)
{
    sortSpans(spans);
    std::string line;
    for (const SpanRecord &s : spans) {
        line.clear();
        line += "{\"schema\":\"solarcore-span-v1\",\"trace\":\"";
        line += spanIdHex(s.traceId);
        line += "\",\"span\":\"";
        line += spanIdHex(s.spanId);
        line += "\",\"parent\":\"";
        line += spanIdHex(s.parentId);
        line += "\",\"name\":";
        line += jsonString(s.name);
        line += ",\"start_ns\":";
        line += jsonNumber(s.startNs);
        line += ",\"end_ns\":";
        line += jsonNumber(s.endNs);
        line += ",\"lane\":";
        line += jsonNumber(static_cast<std::uint64_t>(s.lane));
        line += ",\"attrs\":";
        appendAttrsJson(line, s);
        line += "}\n";
        os << line;
    }
}

void
exportSpansChromeTrace(std::vector<SpanRecord> spans, std::ostream &os)
{
    sortSpans(spans);
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Track-per-request: one "process" per trace id, one thread lane
    // per span lane. Sorted span order makes pid assignment stable.
    std::vector<std::uint64_t> traces;
    for (const SpanRecord &s : spans)
        if (traces.empty() || traces.back() != s.traceId)
            traces.push_back(s.traceId);
    auto pidOf = [&](std::uint64_t trace_id) {
        const auto it =
            std::lower_bound(traces.begin(), traces.end(), trace_id);
        return static_cast<int>(it - traces.begin()) + 1;
    };
    for (std::size_t i = 0; i < traces.size(); ++i) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << i + 1
           << ",\"args\":{\"name\":\"trace " << spanIdHex(traces[i])
           << "\"}}";
    }

    for (const SpanRecord &s : spans) {
        sep();
        os << "{\"name\":" << jsonString(s.name)
           << ",\"ph\":\"X\",\"pid\":" << pidOf(s.traceId)
           << ",\"tid\":" << s.lane + 1
           << ",\"ts\":" << jsonNumber(s.startNs / 1000.0)
           << ",\"dur\":" << jsonNumber((s.endNs - s.startNs) / 1000.0)
           << ",\"args\":{\"span\":\"" << spanIdHex(s.spanId)
           << "\",\"parent\":\"" << spanIdHex(s.parentId) << '"';
        for (std::uint32_t i = 0; i < s.attrCount; ++i) {
            const SpanAttr &a = s.attrs[i];
            os << ',' << jsonString(a.key) << ':';
            switch (a.kind) {
            case SpanAttr::Kind::Int:
                os << jsonNumber(a.i);
                break;
            case SpanAttr::Kind::Double:
                os << jsonNumber(a.d);
                break;
            case SpanAttr::Kind::Bool:
                os << (a.i != 0 ? "true" : "false");
                break;
            case SpanAttr::Kind::Text:
            case SpanAttr::Kind::None:
                os << jsonString(a.text);
                break;
            }
        }
        os << "}}";
    }
    os << "\n]}\n";
}

bool
writeSpanExports(const std::vector<SpanRecord> &spans,
                 const std::string &jsonl_path,
                 const std::string &perfetto_path, std::string &error)
{
    if (!jsonl_path.empty()) {
        std::ofstream os(jsonl_path, std::ios::trunc);
        if (!os) {
            error = "cannot open " + jsonl_path;
            return false;
        }
        exportSpansJsonl(spans, os);
        if (!os.good()) {
            error = "write failed: " + jsonl_path;
            return false;
        }
    }
    if (!perfetto_path.empty()) {
        std::ofstream os(perfetto_path, std::ios::trunc);
        if (!os) {
            error = "cannot open " + perfetto_path;
            return false;
        }
        exportSpansChromeTrace(spans, os);
        if (!os.good()) {
            error = "write failed: " + perfetto_path;
            return false;
        }
    }
    return true;
}

} // namespace solarcore::obs
