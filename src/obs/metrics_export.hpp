/**
 * @file
 * OpenMetrics/Prometheus text exposition of the observability layer.
 *
 * Three pieces, all dependency-free:
 *
 *  - An OpenMetricsWriter that renders metric families (gauge,
 *    counter, histogram, info) with HELP/TYPE lines, label escaping
 *    and the terminating `# EOF`, plus appendRegistry() mapping the
 *    stats registry onto it: scalars/formulas become gauges, vectors
 *    become one gauge family with a `lane` label, histograms become
 *    classic cumulative-bucket histograms with `_sum`/`_count`.
 *
 *  - A MetricsEndpoint: a payload mailbox serving the most recent
 *    exposition text over a tiny embedded blocking-accept TCP/HTTP
 *    endpoint (--metrics-port; port 0 binds ephemerally for tests)
 *    and/or snapshotting it to a file via atomic rename
 *    (--metrics-out). Producers render a snapshot under their own
 *    locking and hand the finished string to update(); the server
 *    thread never touches live simulation state, which is what keeps
 *    scraping off the determinism-critical paths.
 *
 *  - lintOpenMetrics(): the structural validator CI pipes scrapes
 *    through -- HELP/TYPE presence, name/label syntax, histogram
 *    bucket monotonicity and `_sum`/`_count` consistency, `# EOF`.
 *
 * Metric names are sanitized from the registry's dotted names:
 * "pv.mppCache.hitRate" => "solarcore_pv_mppCache_hitRate".
 */

#ifndef SOLARCORE_OBS_METRICS_EXPORT_HPP
#define SOLARCORE_OBS_METRICS_EXPORT_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace solarcore::obs {

class StatsRegistry;
class Profiler;

/** Dotted stat name => exposition metric name ("solarcore_" prefix,
 *  [a-zA-Z0-9_:] alphabet, '.' => '_', junk => '_'). */
std::string openMetricsName(std::string_view dotted);

/** Escape a label value per OpenMetrics (backslash, quote, newline). */
std::string openMetricsEscapeLabel(std::string_view value);

/** Escape a HELP/info text per OpenMetrics (backslash, newline). */
std::string openMetricsEscapeHelp(std::string_view text);

/**
 * One OpenMetrics exemplar: a reference (typically a trace id) pinned
 * to a histogram bucket sample, rendered as
 * `... # {trace_id="<id>"} value timestamp`. Only meaningful on
 * `_bucket` samples of histogram families; the lint enforces that.
 */
struct MetricExemplar
{
    bool valid = false;
    std::vector<std::pair<std::string, std::string>> labels;
    double value = 0.0;
    double timestampSeconds = 0.0; //!< unix seconds; <= 0 omits it
};

/** Incremental builder of one exposition document. */
class OpenMetricsWriter
{
  public:
    using Labels = std::vector<std::pair<std::string, std::string>>;

    /** Start family @p name (already sanitized) of @p type
     *  ("gauge"/"counter"/"histogram"/"info") with HELP @p help. */
    void family(std::string_view name, std::string_view type,
                std::string_view help);

    /** One sample of the current family; @p suffix extends the metric
     *  name ("_total", "_bucket", ...). */
    void sample(std::string_view suffix, const Labels &labels,
                double value);

    /** A sample carrying an exemplar (histogram `_bucket` lines). */
    void sample(std::string_view suffix, const Labels &labels,
                double value, const MetricExemplar &exemplar);

    /** Convenience: a one-sample gauge family. */
    void gauge(std::string_view name, std::string_view help, double value);

    /** Convenience: a one-sample counter family (adds `_total`). */
    void counter(std::string_view name, std::string_view help,
                 double value);

    /**
     * A classic cumulative histogram family from per-bin counts.
     * @p upperBounds holds each bin's inclusive upper edge (the final
     * +Inf bucket is added automatically), @p counts the matching
     * non-cumulative per-bin tallies, @p sum the value sum.
     */
    void histogram(std::string_view name, std::string_view help,
                   const std::vector<double> &upperBounds,
                   const std::vector<std::uint64_t> &counts,
                   std::uint64_t total, double sum);

    /**
     * histogram() with per-bucket exemplars: @p exemplars aligns with
     * @p upperBounds plus one trailing entry for the +Inf bucket;
     * invalid entries render a plain bucket line.
     */
    void histogram(std::string_view name, std::string_view help,
                   const std::vector<double> &upperBounds,
                   const std::vector<std::uint64_t> &counts,
                   std::uint64_t total, double sum,
                   const std::vector<MetricExemplar> &exemplars);

    /** An info family (`name_info{labels} 1`). */
    void info(std::string_view name, std::string_view help,
              const Labels &labels);

    /** Finish with `# EOF` and return the document. */
    std::string finish();

    const std::string &text() const { return text_; }

  private:
    std::string text_;
    std::string familyName_;
    bool finished_ = false;
};

/** Render every stat of @p reg into @p w (see file header mapping). */
void appendRegistry(OpenMetricsWriter &w, const StatsRegistry &reg);

/**
 * Render the self-profiler tree as one `solarcore_profile_scope_us`
 * histogram family: one series per collapsed stack path (label
 * `scope="day;step;mpp.solve"`), log2 latency buckets in microseconds
 * trimmed to the occupied prefix.
 */
void appendProfiler(OpenMetricsWriter &w, const Profiler &profiler);

/**
 * Structural OpenMetrics lint. @return true when @p text is clean;
 * otherwise false with one message per problem in @p errors.
 */
bool lintOpenMetrics(std::string_view text,
                     std::vector<std::string> &errors);

/**
 * The scrape surface: holds the latest exposition payload and serves
 * it over HTTP/1.0 from a background blocking-accept loop. start()
 * and the server are optional -- writeSnapshot() alone gives the
 * file-based scrape path.
 */
class MetricsEndpoint
{
  public:
    MetricsEndpoint();
    ~MetricsEndpoint();

    MetricsEndpoint(const MetricsEndpoint &) = delete;
    MetricsEndpoint &operator=(const MetricsEndpoint &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start the accept
     * thread. @return false (with a warning) when the bind fails.
     */
    bool start(int port);

    /** The bound port (after start()); 0 when not serving. */
    int port() const { return port_; }

    /** Swap in a freshly rendered exposition document. */
    void update(std::string payload);

    /** The current payload (tests / snapshot writers). */
    std::string payload() const;

    /**
     * Write the current payload to @p path via write-to-temp +
     * atomic rename, so a concurrent reader never sees a torn file.
     * @return false (with a warning) on I/O failure
     */
    bool writeSnapshot(const std::string &path) const;

    /** Stop the accept thread and close the socket (idempotent). */
    void stop();

  private:
    void serveLoop();

    mutable std::mutex mutex_;
    std::string payload_ = "# EOF\n";
    std::atomic<bool> running_{false};
    int listenFd_ = -1;
    int port_ = 0;
    std::thread server_;
};

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_METRICS_EXPORT_HPP
