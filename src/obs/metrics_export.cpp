#include "metrics_export.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/stats_registry.hpp"
#include "util/logging.hpp"

namespace solarcore::obs {

namespace {

/** OpenMetrics sample value: shortest round-trip, with the spec's
 *  spellings for the non-finite values JSON cannot carry. */
std::string
metricNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return jsonNumber(v);
}

bool
validMetricName(std::string_view name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (const char c : name.substr(1))
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    return true;
}

} // namespace

std::string
openMetricsName(std::string_view dotted)
{
    std::string out = "solarcore_";
    for (const char c : dotted) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
openMetricsEscapeLabel(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"':  out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default:   out += c;
        }
    }
    return out;
}

std::string
openMetricsEscapeHelp(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default:   out += c;
        }
    }
    return out;
}

// ------------------------------------------------------------- writer

void
OpenMetricsWriter::family(std::string_view name, std::string_view type,
                          std::string_view help)
{
    familyName_ = std::string(name);
    text_ += "# HELP ";
    text_ += familyName_;
    text_ += ' ';
    text_ += openMetricsEscapeHelp(help.empty() ? name : help);
    text_ += "\n# TYPE ";
    text_ += familyName_;
    text_ += ' ';
    text_ += type;
    text_ += '\n';
}

void
OpenMetricsWriter::sample(std::string_view suffix, const Labels &labels,
                          double value)
{
    sample(suffix, labels, value, MetricExemplar{});
}

void
OpenMetricsWriter::sample(std::string_view suffix, const Labels &labels,
                          double value, const MetricExemplar &exemplar)
{
    auto labelSet = [this](const Labels &set) {
        text_ += '{';
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (i)
                text_ += ',';
            text_ += set[i].first;
            text_ += "=\"";
            text_ += openMetricsEscapeLabel(set[i].second);
            text_ += '"';
        }
        text_ += '}';
    };
    text_ += familyName_;
    text_ += suffix;
    if (!labels.empty())
        labelSet(labels);
    text_ += ' ';
    text_ += metricNumber(value);
    if (exemplar.valid) {
        // `value # {trace_id="..."} exemplar_value timestamp`
        text_ += " # ";
        labelSet(exemplar.labels);
        text_ += ' ';
        text_ += metricNumber(exemplar.value);
        if (exemplar.timestampSeconds > 0.0) {
            text_ += ' ';
            text_ += metricNumber(exemplar.timestampSeconds);
        }
    }
    text_ += '\n';
}

void
OpenMetricsWriter::gauge(std::string_view name, std::string_view help,
                         double value)
{
    family(name, "gauge", help);
    sample("", {}, value);
}

void
OpenMetricsWriter::counter(std::string_view name, std::string_view help,
                           double value)
{
    family(name, "counter", help);
    sample("_total", {}, value);
}

void
OpenMetricsWriter::histogram(std::string_view name, std::string_view help,
                             const std::vector<double> &upperBounds,
                             const std::vector<std::uint64_t> &counts,
                             std::uint64_t total, double sum)
{
    histogram(name, help, upperBounds, counts, total, sum, {});
}

void
OpenMetricsWriter::histogram(std::string_view name, std::string_view help,
                             const std::vector<double> &upperBounds,
                             const std::vector<std::uint64_t> &counts,
                             std::uint64_t total, double sum,
                             const std::vector<MetricExemplar> &exemplars)
{
    family(name, "histogram", help);
    auto exemplarAt = [&exemplars](std::size_t i) {
        return i < exemplars.size() ? exemplars[i] : MetricExemplar{};
    };
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < upperBounds.size(); ++i) {
        cumulative += i < counts.size() ? counts[i] : 0;
        sample("_bucket", {{"le", metricNumber(upperBounds[i])}},
               static_cast<double>(cumulative), exemplarAt(i));
    }
    // Everything past the last finite bound (the registry's clamped
    // top bin, the profiler's tail) lands in +Inf, which must equal
    // _count exactly.
    sample("_bucket", {{"le", "+Inf"}}, static_cast<double>(total),
           exemplarAt(upperBounds.size()));
    sample("_sum", {}, sum);
    sample("_count", {}, static_cast<double>(total));
}

void
OpenMetricsWriter::info(std::string_view name, std::string_view help,
                        const Labels &labels)
{
    family(name, "info", help);
    sample("_info", labels, 1.0);
}

std::string
OpenMetricsWriter::finish()
{
    if (!finished_) {
        text_ += "# EOF\n";
        finished_ = true;
    }
    return text_;
}

// ----------------------------------------------------------- registry

void
appendRegistry(OpenMetricsWriter &w, const StatsRegistry &reg)
{
    reg.forEach([&](const StatBase &stat) {
        const std::string name = openMetricsName(stat.name());
        if (const auto *s = dynamic_cast<const ScalarStat *>(&stat)) {
            w.gauge(name, stat.desc(), s->value());
        } else if (const auto *v =
                       dynamic_cast<const VectorStat *>(&stat)) {
            w.family(name, "gauge", stat.desc());
            for (std::size_t i = 0; i < v->lanes(); ++i)
                w.sample("", {{"lane", std::to_string(i)}}, v->lane(i));
        } else if (const auto *h =
                       dynamic_cast<const HistogramStat *>(&stat)) {
            // Finite edges stop at the second-to-last bin: the top bin
            // clamps out-of-range samples, so its honest bucket is
            // +Inf rather than `hi`.
            std::vector<double> bounds;
            std::vector<std::uint64_t> counts;
            for (std::size_t i = 0; i + 1 < h->bins(); ++i) {
                bounds.push_back(h->binLow(i + 1));
                counts.push_back(h->bin(i));
            }
            w.histogram(name, stat.desc(), bounds, counts, h->total(),
                        h->sum());
        } else if (const auto *f =
                       dynamic_cast<const FormulaStat *>(&stat)) {
            w.gauge(name, stat.desc(), f->value(reg));
        }
    });
}

namespace {

void
appendProfileNode(OpenMetricsWriter &w, const Profiler::Node &node,
                  std::string path)
{
    if (!node.name.empty()) {
        path = path.empty() ? node.name : path + ";" + node.name;
        if (node.count > 0) {
            // Log2(ns) buckets rendered as microsecond upper edges;
            // trim the unoccupied tail so the exposition stays small.
            std::size_t top = 0;
            for (std::size_t b = 0; b < Profiler::kHistBuckets; ++b)
                if (node.hist[b] > 0)
                    top = b + 1;
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < top; ++b) {
                cumulative += node.hist[b];
                w.sample("_bucket",
                         {{"scope", path},
                          {"le", metricNumber(
                                     static_cast<double>(1ull << (b + 1)) *
                                     1e-3)}},
                         static_cast<double>(cumulative));
            }
            w.sample("_bucket", {{"scope", path}, {"le", "+Inf"}},
                     static_cast<double>(node.count));
            w.sample("_sum", {{"scope", path}},
                     static_cast<double>(node.totalNs) * 1e-3);
            w.sample("_count", {{"scope", path}},
                     static_cast<double>(node.count));
        }
    }
    for (const auto &[name, child] : node.children)
        appendProfileNode(w, *child, path);
}

} // namespace

void
appendProfiler(OpenMetricsWriter &w, const Profiler &profiler)
{
    w.family("solarcore_profile_scope_us", "histogram",
             "scoped self-profiler latency, log2 buckets "
             "[microseconds]; scope is the collapsed stack path");
    appendProfileNode(w, profiler.root(), "");
}

// --------------------------------------------------------------- lint

namespace {

struct FamilyState
{
    std::string type;
    bool sawHelp = false;
    bool sawSample = false;
    // histogram accounting
    double lastLe = -std::numeric_limits<double>::infinity();
    std::string lastSeriesKey;
    double lastBucketCount = 0.0;
    bool sawInfBucket = false;
    double infCount = 0.0;
    bool sawSum = false;
    bool sawCount = false;
    double countValue = 0.0;
};

bool
parseSampleValue(std::string_view text, double &out)
{
    if (text == "NaN") {
        out = std::numeric_limits<double>::quiet_NaN();
        return true;
    }
    if (text == "+Inf" || text == "Inf") {
        out = std::numeric_limits<double>::infinity();
        return true;
    }
    if (text == "-Inf") {
        out = -std::numeric_limits<double>::infinity();
        return true;
    }
    char *end = nullptr;
    const std::string buf(text);
    out = std::strtod(buf.c_str(), &end);
    return end && *end == '\0' && !buf.empty();
}

/** Split `name{labels} value` into its parts; labels may be absent. */
bool
splitSample(std::string_view line, std::string_view &name,
            std::string_view &labels, std::string_view &value)
{
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ')
        ++i;
    name = line.substr(0, i);
    labels = {};
    if (i < line.size() && line[i] == '{') {
        // Scan to the matching close brace honoring escaped quotes.
        std::size_t j = i + 1;
        bool inString = false;
        while (j < line.size()) {
            const char c = line[j];
            if (inString) {
                if (c == '\\')
                    ++j;
                else if (c == '"')
                    inString = false;
            } else if (c == '"') {
                inString = true;
            } else if (c == '}') {
                break;
            }
            ++j;
        }
        if (j >= line.size())
            return false;
        labels = line.substr(i + 1, j - i - 1);
        i = j + 1;
    }
    if (i >= line.size() || line[i] != ' ')
        return false;
    value = line.substr(i + 1);
    return !value.empty();
}

/** Extract label @p key's unescaped value from a label body. */
bool
labelValue(std::string_view labels, std::string_view key,
           std::string &out, std::string &error)
{
    std::size_t i = 0;
    while (i < labels.size()) {
        std::size_t eq = labels.find('=', i);
        if (eq == std::string_view::npos) {
            error = "malformed label pair";
            return false;
        }
        const std::string_view name = labels.substr(i, eq - i);
        if (eq + 1 >= labels.size() || labels[eq + 1] != '"') {
            error = "label value not quoted";
            return false;
        }
        std::string decoded;
        std::size_t j = eq + 2;
        bool closed = false;
        while (j < labels.size()) {
            const char c = labels[j];
            if (c == '\\' && j + 1 < labels.size()) {
                const char n = labels[j + 1];
                decoded += n == 'n' ? '\n' : n;
                j += 2;
                continue;
            }
            if (c == '"') {
                closed = true;
                ++j;
                break;
            }
            decoded += c;
            ++j;
        }
        if (!closed) {
            error = "unterminated label value";
            return false;
        }
        if (name == key) {
            out = decoded;
            return true;
        }
        if (j < labels.size()) {
            if (labels[j] != ',') {
                error = "junk after label value";
                return false;
            }
            ++j;
        }
        i = j;
    }
    error = "";
    return false; // not found, but structurally fine
}

/**
 * Validate one exemplar section (everything after `value # `):
 * `{labelset} value [timestamp]` with a structurally sound label set
 * no longer than the spec's 128-character budget.
 */
bool
parseExemplar(std::string_view text, std::string &error)
{
    if (text.empty() || text[0] != '{') {
        error = "exemplar must start with a label set";
        return false;
    }
    std::size_t j = 1;
    bool inString = false;
    while (j < text.size()) {
        const char c = text[j];
        if (inString) {
            if (c == '\\')
                ++j;
            else if (c == '"')
                inString = false;
        } else if (c == '"') {
            inString = true;
        } else if (c == '}') {
            break;
        }
        ++j;
    }
    if (j >= text.size()) {
        error = "unterminated exemplar label set";
        return false;
    }
    const std::string_view body = text.substr(1, j - 1);
    if (!body.empty()) {
        std::string dummy, err;
        labelValue(body, "\x01", dummy, err);
        if (!err.empty()) {
            error = "exemplar " + err;
            return false;
        }
    }
    if (body.size() > 128) {
        error = "exemplar label set exceeds 128 characters";
        return false;
    }
    std::size_t i = j + 1;
    if (i >= text.size() || text[i] != ' ' || i + 1 >= text.size()) {
        error = "exemplar missing value";
        return false;
    }
    ++i;
    const std::size_t sp = text.find(' ', i);
    double v = 0.0;
    const std::string_view value_tok = text.substr(
        i, sp == std::string_view::npos ? std::string_view::npos : sp - i);
    if (!parseSampleValue(value_tok, v)) {
        error = "bad exemplar value '" + std::string(value_tok) + "'";
        return false;
    }
    if (sp != std::string_view::npos) {
        double ts = 0.0;
        const std::string_view ts_tok = text.substr(sp + 1);
        if (!parseSampleValue(ts_tok, ts)) {
            error = "bad exemplar timestamp '" + std::string(ts_tok) + "'";
            return false;
        }
    }
    return true;
}

} // namespace

bool
lintOpenMetrics(std::string_view text, std::vector<std::string> &errors)
{
    errors.clear();
    std::map<std::string, FamilyState, std::less<>> families;
    bool sawEof = false;
    std::size_t lineNo = 0;
    std::size_t pos = 0;

    auto fail = [&](const std::string &msg) {
        errors.push_back("line " + std::to_string(lineNo) + ": " + msg);
    };

    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string_view::npos) {
            ++lineNo;
            errors.push_back("line " + std::to_string(lineNo) +
                             ": missing trailing newline");
            break;
        }
        const std::string_view line = text.substr(pos, nl - pos);
        pos = nl + 1;
        ++lineNo;
        if (sawEof) {
            fail("content after # EOF");
            break;
        }
        if (line.empty()) {
            fail("empty line");
            continue;
        }
        if (line == "# EOF") {
            sawEof = true;
            continue;
        }
        if (line.rfind("# HELP ", 0) == 0 ||
            line.rfind("# TYPE ", 0) == 0) {
            const bool isHelp = line[2] == 'H';
            const std::string_view rest = line.substr(7);
            const std::size_t sp = rest.find(' ');
            if (sp == std::string_view::npos || sp == 0) {
                fail("malformed # " +
                     std::string(isHelp ? "HELP" : "TYPE") + " line");
                continue;
            }
            const std::string name(rest.substr(0, sp));
            if (!validMetricName(name)) {
                fail("bad metric family name '" + name + "'");
                continue;
            }
            auto &fam = families[name];
            if (isHelp) {
                fam.sawHelp = true;
            } else {
                const std::string type(rest.substr(sp + 1));
                if (type != "gauge" && type != "counter" &&
                    type != "histogram" && type != "info" &&
                    type != "summary" && type != "unknown") {
                    fail("unknown metric type '" + type + "'");
                    continue;
                }
                if (!fam.type.empty())
                    fail("duplicate # TYPE for '" + name + "'");
                if (fam.sawSample)
                    fail("# TYPE after samples of '" + name + "'");
                fam.type = type;
            }
            continue;
        }
        if (line[0] == '#')
            continue; // free-form comment

        std::string_view name, labels, valueText;
        if (!splitSample(line, name, labels, valueText)) {
            fail("malformed sample line");
            continue;
        }
        if (!validMetricName(std::string(name))) {
            fail("bad metric name '" + std::string(name) + "'");
            continue;
        }
        // An exemplar rides after the value: `value # {...} v [ts]`.
        std::string_view exemplarText;
        bool hasExemplar = false;
        {
            const std::size_t hash = valueText.find(" # ");
            if (hash != std::string_view::npos) {
                exemplarText = valueText.substr(hash + 3);
                valueText = valueText.substr(0, hash);
                hasExemplar = true;
            }
        }
        double value = 0.0;
        if (!parseSampleValue(valueText, value)) {
            fail("bad sample value '" + std::string(valueText) + "'");
            continue;
        }
        // Resolve the family: strip a known suffix per declared type.
        std::string base(name);
        std::string suffix;
        for (const char *s : {"_bucket", "_total", "_count", "_sum",
                              "_info"}) {
            const std::string_view sv(s);
            if (base.size() > sv.size() &&
                base.compare(base.size() - sv.size(), sv.size(), s) ==
                    0) {
                const std::string candidate =
                    base.substr(0, base.size() - sv.size());
                const auto it = families.find(candidate);
                if (it != families.end()) {
                    base = candidate;
                    suffix = std::string(sv);
                    break;
                }
            }
        }
        const auto it = families.find(base);
        if (it == families.end() || it->second.type.empty()) {
            fail("sample '" + std::string(name) +
                 "' without a preceding # TYPE");
            continue;
        }
        FamilyState &fam = it->second;
        fam.sawSample = true;
        if (!fam.sawHelp)
            fail("family '" + base + "' has no # HELP");

        if (hasExemplar) {
            // Exemplars are only legal on histogram bucket samples.
            if (fam.type != "histogram" || suffix != "_bucket") {
                fail("exemplar on non-histogram-bucket sample '" +
                     std::string(name) + "'");
            } else {
                std::string err;
                if (!parseExemplar(exemplarText, err))
                    fail(err);
            }
        }

        if (fam.type == "counter") {
            if (suffix != "_total")
                fail("counter sample '" + std::string(name) +
                     "' must end in _total");
            if (value < 0.0)
                fail("counter '" + base + "' is negative");
        } else if (fam.type == "info") {
            if (suffix != "_info")
                fail("info sample must end in _info");
        } else if (fam.type == "histogram") {
            std::string err;
            if (suffix == "_bucket") {
                std::string le;
                if (!labelValue(labels, "le", le, err)) {
                    fail(err.empty()
                             ? "_bucket sample without le label"
                             : err);
                    continue;
                }
                // A new series (different non-le labels) restarts the
                // monotonicity tracking.
                std::string scope;
                labelValue(labels, "scope", scope, err);
                std::string lane;
                labelValue(labels, "lane", lane, err);
                const std::string seriesKey = scope + "\x1f" + lane;
                if (seriesKey != fam.lastSeriesKey) {
                    fam.lastSeriesKey = seriesKey;
                    fam.lastLe =
                        -std::numeric_limits<double>::infinity();
                    fam.lastBucketCount = 0.0;
                }
                double leValue = 0.0;
                if (!parseSampleValue(le, leValue)) {
                    fail("unparsable le '" + le + "'");
                    continue;
                }
                if (leValue <= fam.lastLe)
                    fail("bucket le '" + le +
                         "' not increasing in '" + base + "'");
                if (value + 1e-9 < fam.lastBucketCount)
                    fail("bucket counts of '" + base +
                         "' not cumulative");
                fam.lastLe = leValue;
                fam.lastBucketCount = value;
                if (std::isinf(leValue) && leValue > 0) {
                    fam.sawInfBucket = true;
                    fam.infCount = value;
                }
            } else if (suffix == "_sum") {
                fam.sawSum = true;
            } else if (suffix == "_count") {
                fam.sawCount = true;
                fam.countValue = value;
            } else {
                fail("histogram sample '" + std::string(name) +
                     "' must end in _bucket/_sum/_count");
            }
        }
    }

    if (!sawEof)
        errors.push_back("missing terminating # EOF");
    for (const auto &[name, fam] : families) {
        if (fam.type.empty())
            errors.push_back("family '" + name + "' has no # TYPE");
        if (fam.type == "histogram" && fam.sawSample) {
            if (!fam.sawInfBucket)
                errors.push_back("histogram '" + name +
                                 "' lacks a +Inf bucket");
            if (!fam.sawSum)
                errors.push_back("histogram '" + name + "' lacks _sum");
            if (!fam.sawCount)
                errors.push_back("histogram '" + name +
                                 "' lacks _count");
            else if (fam.sawInfBucket &&
                     fam.infCount != fam.countValue)
                errors.push_back("histogram '" + name +
                                 "': +Inf bucket != _count");
        }
    }
    return errors.empty();
}

// ----------------------------------------------------------- endpoint

MetricsEndpoint::MetricsEndpoint() = default;

MetricsEndpoint::~MetricsEndpoint()
{
    stop();
}

bool
MetricsEndpoint::start(int port)
{
    if (running_.load())
        return true;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        SC_WARN("metrics: socket() failed: ", std::strerror(errno));
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        SC_WARN("metrics: cannot listen on 127.0.0.1:", port, ": ",
                std::strerror(errno));
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) ==
        0)
        port_ = ntohs(addr.sin_port);
    listenFd_ = fd;
    running_.store(true);
    server_ = std::thread([this] { serveLoop(); });
    return true;
}

void
MetricsEndpoint::serveLoop()
{
    while (running_.load()) {
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0) {
            if (!running_.load())
                break;
            continue;
        }
        timeval tv{};
        tv.tv_sec = 2;
        ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

        // Drain the request line + headers (we serve one document
        // regardless of the path) without trusting the client.
        char buf[1024];
        std::string request;
        while (request.find("\r\n\r\n") == std::string::npos &&
               request.size() < 8192) {
            const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
            if (n <= 0)
                break;
            request.append(buf, static_cast<std::size_t>(n));
        }

        std::string body;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            body = payload_;
        }
        std::string response =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: application/openmetrics-text; "
            "version=1.0.0; charset=utf-8\r\n"
            "Content-Length: " +
            std::to_string(body.size()) +
            "\r\n"
            "Connection: close\r\n\r\n" +
            body;
        std::size_t sent = 0;
        while (sent < response.size()) {
            const ssize_t n = ::send(client, response.data() + sent,
                                     response.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
                break;
            sent += static_cast<std::size_t>(n);
        }
        ::close(client);
    }
}

void
MetricsEndpoint::update(std::string payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    payload_ = std::move(payload);
}

std::string
MetricsEndpoint::payload() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return payload_;
}

bool
MetricsEndpoint::writeSnapshot(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            SC_WARN("metrics: cannot open '", tmp, "'");
            return false;
        }
        os << payload();
        if (!os) {
            SC_WARN("metrics: short write to '", tmp, "'");
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        SC_WARN("metrics: rename to '", path,
                "' failed: ", std::strerror(errno));
        return false;
    }
    return true;
}

void
MetricsEndpoint::stop()
{
    if (!running_.exchange(false))
        return;
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (server_.joinable())
        server_.join();
    port_ = 0;
}

} // namespace solarcore::obs
