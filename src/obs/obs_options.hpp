/**
 * @file
 * Shared command-line wiring for the observability layer: every tool
 * that simulates days (solarcore_cli, the bench binaries) accepts
 *
 *   --stats-out=FILE    stats registry dump (.json or .csv by extension)
 *   --trace-out=FILE    event trace (.jsonl, or Chrome trace JSON
 *                       otherwise -- load the latter in Perfetto)
 *   --trace-buffer=N    ring-buffer capacity in events (default 64k)
 *   --manifest-out=FILE run manifest; when omitted but another output
 *                       is requested, a `<output>.manifest.json`
 *                       sidecar is written next to it
 *
 * consume() recognizes one argv token at a time so callers can weave
 * it into their existing parsers.
 */

#ifndef SOLARCORE_OBS_OBS_OPTIONS_HPP
#define SOLARCORE_OBS_OBS_OPTIONS_HPP

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace solarcore::obs {

class RunManifest;
class StatsRegistry;

/** Parsed observability flags plus the output helpers. */
struct ObsOptions
{
    std::string statsOut;
    std::string traceOut;
    std::string manifestOut;
    std::size_t traceBufferCap = 1 << 16;

    /** @return true when @p arg was an observability flag (consumed). */
    bool consume(std::string_view arg);

    bool statsRequested() const { return !statsOut.empty(); }
    bool traceRequested() const { return !traceOut.empty(); }
    bool anyRequested() const
    {
        return statsRequested() || traceRequested() ||
            !manifestOut.empty();
    }

    /** Write @p reg to statsOut (CSV for .csv, JSON otherwise). */
    void writeStats(const StatsRegistry &reg) const;

    /**
     * Write @p events to traceOut (JSONL for .jsonl, Chrome trace JSON
     * otherwise). @p trackNames labels the Chrome lanes.
     */
    void writeTrace(const std::vector<TraceEvent> &events,
                    const std::vector<std::string> &trackNames = {}) const;

    /**
     * Write @p manifest to manifestOut, or to a sidecar named after
     * the first requested output ("<out>.manifest.json"); no-op when
     * nothing was requested.
     */
    void writeManifest(RunManifest &manifest) const;
};

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_OBS_OPTIONS_HPP
