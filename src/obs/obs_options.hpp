/**
 * @file
 * Shared command-line wiring for the observability layer: every tool
 * that simulates days (solarcore_cli, the bench binaries) accepts
 *
 *   --stats-out=FILE    stats registry dump (.json or .csv by extension)
 *   --trace-out=FILE    event trace (.jsonl, or Chrome trace JSON
 *                       otherwise -- load the latter in Perfetto)
 *   --trace-buffer=N    ring-buffer capacity in events (default 64k)
 *   --manifest-out=FILE run manifest; when omitted but another output
 *                       is requested, a `<output>.manifest.json`
 *                       sidecar is written next to it
 *   --telemetry-out=FILE per-step waveform channels as columnar CSV
 *   --telemetry-every=N  telemetry decimation factor (default 1)
 *   --telemetry-mode=M   "every" or "minmax" decimation (default every)
 *   --profile-out=FILE   scoped self-profiler tree as JSON, plus a
 *                        `FILE.folded` flamegraph collapsed-stack dump
 *   --audit=MODE         invariant auditor: off / count / strict
 *   --audit-out=FILE     auditor JSON report (counts + contexts)
 *   --metrics-out=FILE   OpenMetrics exposition snapshot (atomically
 *                        replaced; point file-based scrapers here)
 *   --metrics-port=N     serve the exposition on 127.0.0.1:N over
 *                        HTTP (0 binds an ephemeral port)
 *   --postmortem-out=FILE arm the crash flight recorder; a fatal
 *                        signal / strict-audit abort writes this
 *                        postmortem.json
 *
 * consume() recognizes one argv token at a time so callers can weave
 * it into their existing parsers.
 */

#ifndef SOLARCORE_OBS_OBS_OPTIONS_HPP
#define SOLARCORE_OBS_OBS_OPTIONS_HPP

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/auditor.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace solarcore::obs {

class Profiler;
class RunManifest;
class StatsRegistry;

/** Parsed observability flags plus the output helpers. */
struct ObsOptions
{
    std::string statsOut;
    std::string traceOut;
    std::string manifestOut;
    std::size_t traceBufferCap = 1 << 16;

    std::string telemetryOut;
    std::size_t telemetryEvery = 1;
    TelemetryMode telemetryMode = TelemetryMode::EveryN;
    std::string profileOut;
    std::string auditOut;
    AuditMode audit = AuditMode::Off;

    std::string metricsOut;
    int metricsPort = -1; //!< -1 disables; 0 binds an ephemeral port
    std::string postmortemOut;

    /** @return true when @p arg was an observability flag (consumed). */
    bool consume(std::string_view arg);

    bool statsRequested() const { return !statsOut.empty(); }
    bool traceRequested() const { return !traceOut.empty(); }
    bool telemetryRequested() const { return !telemetryOut.empty(); }
    bool profileRequested() const { return !profileOut.empty(); }
    bool auditRequested() const
    {
        return audit != AuditMode::Off || !auditOut.empty();
    }
    bool metricsRequested() const
    {
        return !metricsOut.empty() || metricsPort >= 0;
    }
    bool postmortemRequested() const { return !postmortemOut.empty(); }
    bool anyRequested() const
    {
        return statsRequested() || traceRequested() ||
            telemetryRequested() || profileRequested() ||
            auditRequested() || !manifestOut.empty();
    }

    /** Write @p reg to statsOut (CSV for .csv, JSON otherwise). */
    void writeStats(const StatsRegistry &reg) const;

    /**
     * Write @p events to traceOut (JSONL for .jsonl, Chrome trace JSON
     * otherwise). @p trackNames labels the Chrome lanes; @p telemetry
     * (optional) adds per-channel Perfetto counter tracks.
     */
    void writeTrace(const std::vector<TraceEvent> &events,
                    const std::vector<std::string> &trackNames = {},
                    TelemetryRecorder *telemetry = nullptr) const;

    /** Write @p recorder to telemetryOut as columnar CSV. */
    void writeTelemetry(TelemetryRecorder &recorder) const;

    /** As writeTelemetry, but concatenating per-unit recorders. */
    void
    writeTelemetryConcat(const std::vector<TelemetryRecorder *> &recs) const;

    /** Write @p profiler to profileOut as JSON plus a sibling
     *  `<profileOut>.folded` collapsed-stack dump. */
    void writeProfile(const Profiler &profiler) const;

    /** Write @p auditor's JSON report to auditOut. */
    void writeAudit(const Auditor &auditor) const;

    /**
     * Write @p manifest to manifestOut, or to a sidecar named after
     * the first requested output ("<out>.manifest.json"); no-op when
     * nothing was requested.
     */
    void writeManifest(RunManifest &manifest) const;

    /**
     * Record the observability sidecars (paths plus row/violation
     * counts) and the process peak RSS into @p manifest. Pass nullptr
     * for sinks that were not constructed.
     */
    void recordSidecars(RunManifest &manifest,
                        TelemetryRecorder *telemetry = nullptr,
                        const Profiler *profiler = nullptr,
                        const Auditor *auditor = nullptr) const;
};

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_OBS_OPTIONS_HPP
