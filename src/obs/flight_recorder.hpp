/**
 * @file
 * Crash flight recorder: when the process dies -- a fatal signal
 * (SIGSEGV/SIGABRT/...), a strict-audit SC_FATAL, or a library panic
 * -- flush what the simulator was doing into a `postmortem.json` that
 * names the failing invariant, the in-flight campaign units, the
 * crashing thread's open profiler scopes and the tail of every active
 * trace ring.
 *
 * Everything the signal path touches is pre-allocated at install()
 * time: the output paths live in fixed buffers, per-thread unit
 * context sits in a fixed slot table, events are snapshotted into a
 * static array, and the JSON is rendered with local integer/double
 * formatters straight into write(2) -- no malloc, no stdio, no
 * iostreams. The document is written to `<path>.tmp` and published
 * with rename(2), so a reader never sees a torn file. A reentry latch
 * keeps a second fault (or a fault inside the handler) from
 * corrupting the first report.
 *
 * The hook into SC_FATAL/SC_PANIC goes through util/logging's
 * setFatalHook, so strict-audit violations (auditor.hpp) produce a
 * post-mortem naming the violated check before the process exits.
 *
 * Off by default: nothing is installed until --postmortem-out is
 * given, and install() is the only thing that touches process-global
 * signal state.
 */

#ifndef SOLARCORE_OBS_FLIGHT_RECORDER_HPP
#define SOLARCORE_OBS_FLIGHT_RECORDER_HPP

#include <cstddef>
#include <string>

namespace solarcore::obs {

class TraceBuffer;

/** Static configuration of the crash flight recorder. */
struct FlightRecorderConfig
{
    std::string outputPath;     //!< postmortem.json destination
    std::size_t traceTail = 64; //!< newest events kept per trace ring
                                //!< (clamped to an internal maximum)
};

/**
 * Process-wide crash reporter (static: signal dispositions are
 * process-global, so there is exactly one).
 */
class FlightRecorder
{
  public:
    /**
     * Arm the recorder: pre-allocate buffers, install handlers for
     * SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT and hook Fatal/Panic log
     * records. Idempotent; a second call just updates the paths.
     */
    static void install(const FlightRecorderConfig &config);

    /** Disarm: restore default dispositions and unhook logging. */
    static void uninstall();

    static bool installed();

    /** Record the run manifest path for the post-mortem header. */
    static void setManifestPath(const std::string &path);

    /**
     * Mark the calling thread as executing campaign unit @p key with
     * trace ring @p trace (may be nullptr). The key is copied into
     * the thread's pre-allocated slot; @p trace must outlive the unit.
     * Cheap enough for per-unit use; a no-op until install().
     */
    static void beginUnit(const char *key, const TraceBuffer *trace);

    /** Clear the calling thread's in-flight unit. */
    static void endUnit();

    /**
     * Render and publish the post-mortem now (async-signal-safe).
     * Invoked by the signal handlers and the fatal hook; exposed for
     * tests and for explicit "dump state" paths. Only the first call
     * wins -- later calls are dropped by the reentry latch.
     * @return true when this call produced the file
     */
    static bool writePostmortem(const char *reason, const char *detail);
};

} // namespace solarcore::obs

#endif // SOLARCORE_OBS_FLIGHT_RECORDER_HPP
