#include "profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/json.hpp"
#include "util/logging.hpp"

namespace solarcore::obs {

namespace {

thread_local Profiler *t_current = nullptr;

/** Histogram bucket of an elapsed time: floor(log2(ns)), clamped. */
std::size_t
bucketOf(std::int64_t ns)
{
    if (ns <= 1)
        return 0;
    std::size_t b = 0;
    auto v = static_cast<std::uint64_t>(ns);
    while (v > 1 && b + 1 < Profiler::kHistBuckets) {
        v >>= 1;
        ++b;
    }
    return b;
}

} // namespace

std::int64_t
profileNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
Profiler::Node::record(std::int64_t elapsed_ns)
{
    elapsed_ns = std::max<std::int64_t>(elapsed_ns, 0);
    if (count == 0) {
        minNs = elapsed_ns;
        maxNs = elapsed_ns;
    } else {
        minNs = std::min(minNs, elapsed_ns);
        maxNs = std::max(maxNs, elapsed_ns);
    }
    ++count;
    totalNs += elapsed_ns;
    ++hist[bucketOf(elapsed_ns)];
}

double
Profiler::Node::quantileNs(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count);
    double seen = 0.0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
        if (hist[b] == 0)
            continue;
        seen += static_cast<double>(hist[b]);
        if (seen >= target) {
            // Geometric midpoint of the bucket [2^b, 2^(b+1)).
            const double lo = std::exp2(static_cast<double>(b));
            return lo * 1.5;
        }
    }
    return static_cast<double>(maxNs);
}

Profiler::Profiler()
{
    root_.name = "";
}

void
Profiler::enter(const char *name)
{
    auto it = current_->children.find(name);
    if (it == current_->children.end()) {
        auto node = std::make_unique<Node>();
        node->name = name;
        it = current_->children.emplace(node->name, std::move(node)).first;
    }
    // The parent link lives on a side stack implicit in exit(): nodes
    // do not store parents; instead exit() walks back via the frame
    // stack kept here.
    frameStack_.push_back(current_);
    current_ = it->second.get();
}

void
Profiler::exit(std::int64_t elapsed_ns)
{
    SC_ASSERT(!frameStack_.empty(), "profiler: exit without enter");
    current_->record(elapsed_ns);
    current_ = frameStack_.back();
    frameStack_.pop_back();
}

std::size_t
Profiler::openScopeNames(const char **out, std::size_t max) const noexcept
{
    // frameStack_ holds the parents of current_ (root first); the
    // innermost open scope is current_ itself. Skip the synthetic
    // root's empty name.
    std::size_t n = 0;
    for (std::size_t i = 1; i < frameStack_.size() && n < max; ++i)
        out[n++] = frameStack_[i]->name.c_str();
    if (current_ != &root_ && n < max)
        out[n++] = current_->name.c_str();
    return n;
}

std::int64_t
Profiler::totalNs() const
{
    std::int64_t total = 0;
    for (const auto &[name, child] : root_.children)
        total += child->totalNs;
    return total;
}

namespace {

void
mergeNode(Profiler::Node &into, const Profiler::Node &from)
{
    if (from.count > 0) {
        if (into.count == 0) {
            into.minNs = from.minNs;
            into.maxNs = from.maxNs;
        } else {
            into.minNs = std::min(into.minNs, from.minNs);
            into.maxNs = std::max(into.maxNs, from.maxNs);
        }
        into.count += from.count;
        into.totalNs += from.totalNs;
        for (std::size_t b = 0; b < Profiler::kHistBuckets; ++b)
            into.hist[b] += from.hist[b];
    }
    for (const auto &[name, child] : from.children) {
        auto it = into.children.find(name);
        if (it == into.children.end()) {
            auto node = std::make_unique<Profiler::Node>();
            node->name = name;
            it = into.children.emplace(node->name, std::move(node)).first;
        }
        mergeNode(*it->second, *child);
    }
}

void
writeNodeJson(const Profiler::Node &node, std::ostream &os, int depth)
{
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    os << pad << "{\"name\": " << jsonString(node.name)
       << ", \"count\": " << jsonNumber(node.count)
       << ", \"total_us\": "
       << jsonNumber(static_cast<double>(node.totalNs) * 1e-3)
       << ", \"min_us\": "
       << jsonNumber(static_cast<double>(node.minNs) * 1e-3)
       << ", \"max_us\": "
       << jsonNumber(static_cast<double>(node.maxNs) * 1e-3)
       << ", \"p50_us\": " << jsonNumber(node.quantileNs(0.5) * 1e-3)
       << ", \"p99_us\": " << jsonNumber(node.quantileNs(0.99) * 1e-3);
    if (node.children.empty()) {
        os << "}";
        return;
    }
    os << ", \"children\": [\n";
    std::size_t i = 0;
    for (const auto &[name, child] : node.children) {
        writeNodeJson(*child, os, depth + 1);
        os << (++i < node.children.size() ? ",\n" : "\n");
    }
    os << pad << "]}";
}

void
writeNodeCollapsed(const Profiler::Node &node, std::ostream &os,
                   const std::string &prefix)
{
    const std::string path =
        prefix.empty() ? node.name : prefix + ";" + node.name;
    if (!path.empty() && node.count > 0) {
        // Self time: total minus what the children account for, so the
        // stack weights sum correctly in flamegraph.pl.
        std::int64_t child_ns = 0;
        for (const auto &[name, child] : node.children)
            child_ns += child->totalNs;
        const std::int64_t self_ns =
            std::max<std::int64_t>(node.totalNs - child_ns, 0);
        os << path << ' ' << (self_ns / 1000) << '\n';
    }
    for (const auto &[name, child] : node.children)
        writeNodeCollapsed(*child, os, path);
}

} // namespace

void
Profiler::merge(const Profiler &other)
{
    mergeNode(root_, other.root_);
}

void
Profiler::writeJson(std::ostream &os) const
{
    os << "{\"schema\": \"solarcore-profile-v1\", \"total_us\": "
       << jsonNumber(static_cast<double>(totalNs()) * 1e-3)
       << ", \"phases\": [\n";
    std::size_t i = 0;
    for (const auto &[name, child] : root_.children) {
        writeNodeJson(*child, os, 1);
        os << (++i < root_.children.size() ? ",\n" : "\n");
    }
    os << "]}\n";
}

void
Profiler::writeCollapsed(std::ostream &os) const
{
    for (const auto &[name, child] : root_.children)
        writeNodeCollapsed(*child, os, "");
}

Profiler *
Profiler::current()
{
    return t_current;
}

Profiler::Attach::Attach(Profiler *profiler) : previous_(t_current)
{
    t_current = profiler;
}

Profiler::Attach::~Attach()
{
    t_current = previous_;
}

} // namespace solarcore::obs
