#include "multiprogram.hpp"

#include "util/logging.hpp"
#include "workload/catalog.hpp"

namespace solarcore::workload {

std::array<WorkloadId, kNumWorkloads>
allWorkloads()
{
    return {WorkloadId::H1, WorkloadId::H2, WorkloadId::M1, WorkloadId::M2,
            WorkloadId::L1, WorkloadId::L2, WorkloadId::HM1, WorkloadId::HM2,
            WorkloadId::ML1, WorkloadId::ML2};
}

const char *
workloadName(WorkloadId id)
{
    switch (id) {
      case WorkloadId::H1:  return "H1";
      case WorkloadId::H2:  return "H2";
      case WorkloadId::M1:  return "M1";
      case WorkloadId::M2:  return "M2";
      case WorkloadId::L1:  return "L1";
      case WorkloadId::L2:  return "L2";
      case WorkloadId::HM1: return "HM1";
      case WorkloadId::HM2: return "HM2";
      case WorkloadId::ML1: return "ML1";
      case WorkloadId::ML2: return "ML2";
    }
    SC_PANIC("workloadName: bad id");
    return "?";
}

std::vector<std::string>
workloadBenchmarks(WorkloadId id)
{
    switch (id) {
      case WorkloadId::H1:
        return {"art", "art", "art", "art", "art", "art", "art", "art"};
      case WorkloadId::H2:
        return {"art", "art", "apsi", "apsi",
                "bzip2", "bzip2", "gzip", "gzip"};
      case WorkloadId::M1:
        return {"gcc", "gcc", "gcc", "gcc", "gcc", "gcc", "gcc", "gcc"};
      case WorkloadId::M2:
        return {"gcc", "gcc", "mcf", "mcf", "gap", "gap", "vpr", "vpr"};
      case WorkloadId::L1:
        return {"mesa", "mesa", "mesa", "mesa",
                "mesa", "mesa", "mesa", "mesa"};
      case WorkloadId::L2:
        return {"mesa", "mesa", "equake", "equake",
                "lucas", "lucas", "swim", "swim"};
      case WorkloadId::HM1:
        return {"bzip2", "bzip2", "bzip2", "bzip2",
                "gcc", "gcc", "gcc", "gcc"};
      case WorkloadId::HM2:
        return {"bzip2", "gzip", "art", "apsi", "gcc", "mcf", "gap", "vpr"};
      case WorkloadId::ML1:
        return {"gcc", "gcc", "gcc", "gcc",
                "mesa", "mesa", "mesa", "mesa"};
      case WorkloadId::ML2:
        return {"gcc", "mcf", "gap", "vpr",
                "mesa", "equake", "lucas", "swim"};
    }
    SC_PANIC("workloadBenchmarks: bad id");
    return {};
}

std::vector<cpu::BenchmarkProfile>
workloadSet(WorkloadId id)
{
    std::vector<cpu::BenchmarkProfile> out;
    out.reserve(8);
    for (const auto &name : workloadBenchmarks(id))
        out.push_back(benchmark(name));
    return out;
}

bool
isHomogeneous(WorkloadId id)
{
    return id == WorkloadId::H1 || id == WorkloadId::M1 ||
        id == WorkloadId::L1;
}

} // namespace solarcore::workload
