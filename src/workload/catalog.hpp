/**
 * @file
 * The benchmark catalog: 12 SPEC2000 programs characterized for the
 * interval performance model and calibrated so their simulated
 * energy-per-instruction at the top DVFS level lands in the paper's
 * Table 5 EPI classes:
 *
 *   high     (EPI >= 15 nJ): art, apsi, bzip2, gzip
 *   moderate (8..15 nJ):     gcc, mcf, gap, vpr
 *   low      (EPI <= 8 nJ):  mesa, equake, lucas, swim
 *
 * The profiles are synthetic stand-ins for reference-input runs (see
 * DESIGN.md section 3): interval-model inputs were chosen to give each
 * program a plausible IPC/memory-boundness mix, then the datapath
 * activity scale is solved in closed form so the max-V/F EPI equals
 * the class target. Phase sequences modulate ILP and activity around
 * the base point; high-EPI programs swing harder, producing the larger
 * power ripple the paper reports for H1.
 */

#ifndef SOLARCORE_WORKLOAD_CATALOG_HPP
#define SOLARCORE_WORKLOAD_CATALOG_HPP

#include <string>
#include <vector>

#include "cpu/profile.hpp"

namespace solarcore::workload {

/** Names of all 12 catalogued benchmarks. */
std::vector<std::string> allBenchmarkNames();

/** Fetch a calibrated benchmark profile by name; fatal on unknown. */
cpu::BenchmarkProfile benchmark(const std::string &name);

/** The EPI class a benchmark is calibrated to. */
cpu::EpiClass expectedClass(const std::string &name);

/** The calibration EPI target [nJ] of a benchmark at max V/F. */
double epiTargetNj(const std::string &name);

/**
 * Measure the EPI [nJ] of a profile's base (first) phase at the top
 * DVFS level with the default machine; the catalog guarantees this
 * matches epiTargetNj to solver precision.
 */
double measureEpiNj(const cpu::BenchmarkProfile &profile);

} // namespace solarcore::workload

#endif // SOLARCORE_WORKLOAD_CATALOG_HPP
