#include "catalog.hpp"

#include <array>

#include "cpu/dvfs.hpp"
#include "cpu/machine_config.hpp"
#include "cpu/perf_model.hpp"
#include "cpu/power_model.hpp"
#include "util/logging.hpp"

namespace solarcore::workload {

namespace {

/** Raw (pre-calibration) description of one benchmark. */
struct CatalogEntry
{
    const char *name;
    double epiTargetNj;   //!< EPI at max V/F after calibration
    double ilp;
    double branchMpki;
    double l1MissPerKi;
    double l2MissPerKi;
    double stallCpi;
    double mlp;
    double fpFraction;
    double memFraction;
    double phaseSwing;    //!< amplitude of phase-to-phase variation
};

/*
 * Interval-model inputs per program. IPCs at 2.5 GHz come out near:
 * art 0.49, apsi 0.60, bzip2 0.72, gzip 0.65, gcc 0.95, mcf 0.39,
 * gap 0.90, vpr 0.71, mesa 1.75, equake 1.23, lucas 1.15, swim 1.23.
 * Memory stall cycles stay under ~30% of CPI so throughput remains
 * roughly proportional to frequency (the paper's load-tuning premise),
 * and per-core power lands in the 13..27 W band of a 90 nm OoO core.
 */
const std::array<CatalogEntry, 12> kCatalog = {{
    // name      EPI   ilp  mpki l1miss l2miss stall mlp  fp    mem   swing
    {"art",     15.5, 1.5, 5.0, 45.0, 3.0, 0.45, 2.0, 0.30, 0.40, 0.28},
    {"apsi",    15.8, 1.8, 6.0, 30.0, 1.5, 0.55, 2.0, 0.40, 0.30, 0.24},
    {"bzip2",   15.1, 2.2, 8.0, 20.0, 0.8, 0.52, 1.8, 0.00, 0.35, 0.26},
    {"gzip",    15.2, 2.0, 9.0, 15.0, 1.0, 0.63, 2.0, 0.00, 0.30, 0.25},
    {"gcc",      9.5, 2.4, 5.0, 18.0, 1.2, 0.22, 2.0, 0.02, 0.35, 0.16},
    {"mcf",     14.0, 1.6, 9.0, 90.0, 5.0, 0.49, 2.5, 0.00, 0.45, 0.18},
    {"gap",      9.0, 2.6, 3.0, 20.0, 1.2, 0.33, 2.0, 0.05, 0.35, 0.15},
    {"vpr",     11.0, 2.2, 6.0, 25.0, 1.5, 0.42, 2.0, 0.05, 0.35, 0.17},
    {"mesa",     5.5, 3.4, 2.0, 6.0, 0.5, 0.08, 1.5, 0.35, 0.30, 0.10},
    {"equake",   6.5, 2.8, 2.5, 14.0, 1.2, 0.12, 2.2, 0.40, 0.35, 0.12},
    {"lucas",    7.0, 2.6, 1.0, 16.0, 1.5, 0.14, 2.5, 0.50, 0.35, 0.11},
    {"swim",     6.8, 3.0, 1.0, 20.0, 1.8, 0.10, 3.0, 0.45, 0.40, 0.12},
}};

const CatalogEntry &
entry(const std::string &name)
{
    for (const auto &e : kCatalog)
        if (name == e.name)
            return e;
    SC_FATAL("unknown benchmark '", name, "'");
    return kCatalog[0]; // unreachable
}

cpu::PhaseProfile
basePhase(const CatalogEntry &e)
{
    cpu::PhaseProfile p;
    p.ilp = e.ilp;
    p.branchMpki = e.branchMpki;
    p.l1MissPerKi = e.l1MissPerKi;
    p.l2MissPerKi = e.l2MissPerKi;
    p.stallCpi = e.stallCpi;
    p.mlp = e.mlp;
    p.fpFraction = e.fpFraction;
    p.memFraction = e.memFraction;
    p.activityScale = 1.0; // calibrated below
    p.durationSec = 60.0;
    return p;
}

/**
 * Solve the activity scale so the base phase's EPI at the top DVFS
 * point equals the target. EPI(k) = k * A + L is affine in the scale:
 * A collects the activity-scaled dynamic energy per instruction
 * (structures + clock) and L the leakage energy per instruction.
 */
double
solveActivityScale(const cpu::PhaseProfile &base, double epi_target_nj)
{
    const cpu::CoreConfig config;
    const cpu::PerfModel perf_model(config);
    const cpu::PowerModel power_model{cpu::EnergyParams{}};
    const auto table = cpu::DvfsTable::paperDefault();
    const int top = table.maxLevel();
    const double f = table.frequency(top);
    const double v = table.voltage(top);

    const auto perf = perf_model.evaluate(base, f);

    cpu::PhaseProfile probe = base;
    probe.activityScale = 1.0;
    const double epi_at_1 =
        power_model.evaluate(probe, perf, v, f).epiNj;
    probe.activityScale = 2.0;
    const double epi_at_2 =
        power_model.evaluate(probe, perf, v, f).epiNj;

    const double slope = epi_at_2 - epi_at_1; // = A
    const double intercept = epi_at_1 - slope; // = L
    SC_ASSERT(slope > 0.0, "calibration: non-positive EPI slope");
    const double k = (epi_target_nj - intercept) / slope;
    SC_ASSERT(k > 0.0, "calibration: EPI target ", epi_target_nj,
              " nJ unreachable (leakage floor ", intercept, " nJ)");
    return k;
}

/**
 * Build the phase sequence: six phases forming a deterministic cycle
 * around the base point. Activity and ILP move together (hot compute
 * phases) while memory intensity moves opposite (blocked phases are
 * cold), which is what makes high-swing programs ripple in power.
 */
std::vector<cpu::PhaseProfile>
buildPhases(const CatalogEntry &e, double activity_scale)
{
    static const double kShape[6] = {0.0, 1.0, 0.5, -1.0, -0.5, 0.25};
    static const double kDuration[6] = {60.0, 45.0, 75.0, 50.0, 80.0, 55.0};

    std::vector<cpu::PhaseProfile> phases;
    phases.reserve(6);
    for (int i = 0; i < 6; ++i) {
        cpu::PhaseProfile p = basePhase(e);
        const double s = kShape[i] * e.phaseSwing;
        p.activityScale = activity_scale * (1.0 + s);
        p.ilp = e.ilp * (1.0 + 0.5 * s);
        p.l2MissPerKi = e.l2MissPerKi * (1.0 - 0.5 * s);
        p.l1MissPerKi = e.l1MissPerKi * (1.0 - 0.3 * s);
        p.durationSec = kDuration[i];
        phases.push_back(p);
    }
    return phases;
}

} // namespace

std::vector<std::string>
allBenchmarkNames()
{
    std::vector<std::string> names;
    names.reserve(kCatalog.size());
    for (const auto &e : kCatalog)
        names.emplace_back(e.name);
    return names;
}

cpu::BenchmarkProfile
benchmark(const std::string &name)
{
    const CatalogEntry &e = entry(name);
    const double k = solveActivityScale(basePhase(e), e.epiTargetNj);

    cpu::BenchmarkProfile profile;
    profile.name = e.name;
    profile.phases = buildPhases(e, k);
    return profile;
}

cpu::EpiClass
expectedClass(const std::string &name)
{
    return cpu::classifyEpi(entry(name).epiTargetNj);
}

double
epiTargetNj(const std::string &name)
{
    return entry(name).epiTargetNj;
}

double
measureEpiNj(const cpu::BenchmarkProfile &profile)
{
    SC_ASSERT(!profile.phases.empty(), "measureEpiNj: no phases");
    const cpu::CoreConfig config;
    const cpu::PerfModel perf_model(config);
    const cpu::PowerModel power_model{cpu::EnergyParams{}};
    const auto table = cpu::DvfsTable::paperDefault();
    const int top = table.maxLevel();

    const auto &base = profile.phases.front();
    const auto perf = perf_model.evaluate(base, table.frequency(top));
    return power_model
        .evaluate(base, perf, table.voltage(top), table.frequency(top))
        .epiNj;
}

} // namespace solarcore::workload
