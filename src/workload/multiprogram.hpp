/**
 * @file
 * The multiprogrammed workload sets of paper Table 5: homogeneous and
 * heterogeneous 8-program mixes drawn from the high / moderate / low
 * EPI classes.
 */

#ifndef SOLARCORE_WORKLOAD_MULTIPROGRAM_HPP
#define SOLARCORE_WORKLOAD_MULTIPROGRAM_HPP

#include <array>
#include <string>
#include <vector>

#include "cpu/profile.hpp"

namespace solarcore::workload {

/** The ten evaluated workload sets (Table 5). */
enum class WorkloadId
{
    H1 = 0, //!< art x8
    H2,     //!< art x2, apsi x2, bzip2 x2, gzip x2
    M1,     //!< gcc x8
    M2,     //!< gcc x2, mcf x2, gap x2, vpr x2
    L1,     //!< mesa x8
    L2,     //!< mesa x2, equake x2, lucas x2, swim x2
    HM1,    //!< bzip2 x4, gcc x4
    HM2,    //!< bzip2, gzip, art, apsi, gcc, mcf, gap, vpr
    ML1,    //!< gcc x4, mesa x4
    ML2,    //!< gcc, mcf, gap, vpr, mesa, equake, lucas, swim
};

inline constexpr int kNumWorkloads = 10;

/** All workload ids in paper order. */
std::array<WorkloadId, kNumWorkloads> allWorkloads();

/** Short label, e.g. "HM2". */
const char *workloadName(WorkloadId id);

/** Benchmark names composing a workload, one per core (8 entries). */
std::vector<std::string> workloadBenchmarks(WorkloadId id);

/** Calibrated profiles for a workload, one per core (8 entries). */
std::vector<cpu::BenchmarkProfile> workloadSet(WorkloadId id);

/** True for the single-program mixes (H1, M1, L1). */
bool isHomogeneous(WorkloadId id);

} // namespace solarcore::workload

#endif // SOLARCORE_WORKLOAD_MULTIPROGRAM_HPP
