#include "table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace solarcore {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << '%';
    return os.str();
}

std::size_t
TextTable::columns() const
{
    std::size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());
    return cols;
}

void
TextTable::print(std::ostream &os) const
{
    const std::size_t cols = columns();
    std::vector<std::size_t> width(cols, 0);

    auto measure = [&](const std::vector<std::string> &r) {
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string &cell = c < r.size() ? r[c] : std::string();
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << cell;
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : width)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            if (c)
                os << ',';
            os << quote(r[c]);
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << "== " << title << " ==" << '\n';
}

} // namespace solarcore
