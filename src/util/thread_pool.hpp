/**
 * @file
 * Fixed-size worker pool with a deterministic parallel-for.
 *
 * The figure sweeps fan independent (site x month x policy x workload)
 * days across cores. Tasks are identified by index and write their
 * results into index-addressed slots, so the aggregation order -- and
 * therefore every derived table -- is bit-identical regardless of the
 * thread count or scheduling interleave. Determinism contract: task
 * bodies must derive any randomness from their index (the simulations
 * seed from SimConfig::seed), never from thread identity or timing.
 */

#ifndef SOLARCORE_UTIL_THREAD_POOL_HPP
#define SOLARCORE_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace solarcore {

/**
 * A fixed pool of worker threads executing index-based jobs.
 *
 * One job runs at a time (parallelFor blocks until completion); the
 * calling thread participates, so ThreadPool(1) degenerates to a plain
 * sequential loop with zero thread traffic.
 */
class ThreadPool
{
  public:
    /**
     * @param threads total worker count including the caller; 0 (or
     * any negative value) auto-detects via hardwareThreads().
     */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Run body(i) for every i in [0, count), fanned across the pool.
     *
     * Indices are claimed from a shared counter, so execution order is
     * arbitrary -- the body must only touch state owned by its index.
     * The first exception thrown by any body is rethrown here after
     * all workers have drained.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    int threadCount() const { return threads_; }

    /** Hardware concurrency with a floor of 1. */
    static int hardwareThreads();

  private:
    void workerLoop();
    void runJob();

    int threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;   //!< workers wait for a job / stop
    std::condition_variable done_;   //!< caller waits for completion
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::size_t count_ = 0;
    std::atomic<std::size_t> next_{0}; //!< next unclaimed task index
    int active_ = 0;                 //!< workers still inside the job
    std::uint64_t generation_ = 0;   //!< bumps per job to re-arm waits
    std::exception_ptr error_;
    bool stop_ = false;
};

} // namespace solarcore

#endif // SOLARCORE_UTIL_THREAD_POOL_HPP
