#include "math.hpp"

#include <algorithm>
#include <cmath>

#include "logging.hpp"

namespace solarcore {

SolveResult
bisect(const std::function<double(double)> &f, double lo, double hi,
       double x_tol, int max_iter)
{
    SolveResult res;
    double flo = f(lo);
    double fhi = f(hi);

    if (flo == 0.0) {
        res = {lo, 0.0, 0, true};
        return res;
    }
    if (fhi == 0.0) {
        res = {hi, 0.0, 0, true};
        return res;
    }
    if (std::signbit(flo) == std::signbit(fhi)) {
        // No sign change: report the closer-to-zero endpoint, unconverged.
        res.converged = false;
        if (std::abs(flo) < std::abs(fhi)) {
            res.x = lo;
            res.fx = flo;
        } else {
            res.x = hi;
            res.fx = fhi;
        }
        return res;
    }

    double mid = lo;
    double fmid = flo;
    for (int i = 0; i < max_iter; ++i) {
        mid = 0.5 * (lo + hi);
        fmid = f(mid);
        res.iterations = i + 1;
        if (std::abs(hi - lo) < x_tol || fmid == 0.0) {
            res.converged = true;
            break;
        }
        if (std::signbit(fmid) == std::signbit(flo)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    res.x = mid;
    res.fx = fmid;
    if (std::abs(hi - lo) < x_tol)
        res.converged = true;
    return res;
}

SolveResult
newton(const std::function<double(double)> &f,
       const std::function<double(double)> &df, double x0, double lo,
       double hi, double f_tol, int max_iter)
{
    SolveResult res;
    double x = clamp(x0, lo, hi);

    for (int i = 0; i < max_iter; ++i) {
        double fx = f(x);
        res.iterations = i + 1;
        if (std::abs(fx) < f_tol) {
            res.x = x;
            res.fx = fx;
            res.converged = true;
            return res;
        }
        double d = df(x);
        double next;
        if (d == 0.0 || !std::isfinite(d)) {
            next = 0.5 * (lo + hi); // derivative degenerate: bisect bracket
        } else {
            next = x - fx / d;
        }
        if (next < lo || next > hi || !std::isfinite(next)) {
            // Newton escaped the safety bracket: shrink the bracket on the
            // side indicated by the sign of f and bisect.
            if ((fx > 0.0) == (f(hi) > 0.0))
                hi = x;
            else
                lo = x;
            next = 0.5 * (lo + hi);
        }
        x = next;
    }
    res.x = x;
    res.fx = f(x);
    res.converged = std::abs(res.fx) < f_tol;
    return res;
}

SolveResult
goldenMax(const std::function<double(double)> &f, double lo, double hi,
          double x_tol, int max_iter)
{
    SC_ASSERT(lo <= hi, "goldenMax: inverted interval");
    static const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;

    SolveResult res;
    double a = lo;
    double b = hi;
    double c = b - inv_phi * (b - a);
    double d = a + inv_phi * (b - a);
    double fc = f(c);
    double fd = f(d);

    int i = 0;
    for (; i < max_iter && (b - a) > x_tol; ++i) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    res.iterations = i;
    res.converged = (b - a) <= x_tol;
    res.x = 0.5 * (a + b);
    res.fx = f(res.x);
    // Guard against a flat-topped function where an interior sample beat
    // the midpoint.
    if (fc > res.fx) {
        res.x = c;
        res.fx = fc;
    }
    if (fd > res.fx) {
        res.x = d;
        res.fx = fd;
    }
    return res;
}

bool
approxEqual(double a, double b, double tol)
{
    double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= tol * scale;
}

} // namespace solarcore
