#include "math.hpp"

#include <algorithm>
#include <cmath>

#include "logging.hpp"

namespace solarcore {

SolveResult
bisect(const std::function<double(double)> &f, double lo, double hi,
       double x_tol, int max_iter)
{
    SolveResult res;
    double flo = f(lo);
    double fhi = f(hi);

    if (flo == 0.0) {
        res = {lo, 0.0, 0, true};
        return res;
    }
    if (fhi == 0.0) {
        res = {hi, 0.0, 0, true};
        return res;
    }
    if (std::signbit(flo) == std::signbit(fhi)) {
        // No sign change: report the closer-to-zero endpoint, unconverged.
        res.converged = false;
        if (std::abs(flo) < std::abs(fhi)) {
            res.x = lo;
            res.fx = flo;
        } else {
            res.x = hi;
            res.fx = fhi;
        }
        return res;
    }

    double mid = lo;
    double fmid = flo;
    for (int i = 0; i < max_iter; ++i) {
        mid = 0.5 * (lo + hi);
        fmid = f(mid);
        res.iterations = i + 1;
        if (std::abs(hi - lo) < x_tol || fmid == 0.0) {
            res.converged = true;
            break;
        }
        if (std::signbit(fmid) == std::signbit(flo)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    res.x = mid;
    res.fx = fmid;
    if (std::abs(hi - lo) < x_tol)
        res.converged = true;
    return res;
}

SolveResult
newton(const std::function<double(double)> &f,
       const std::function<double(double)> &df, double x0, double lo,
       double hi, double f_tol, int max_iter)
{
    SolveResult res;
    double x = clamp(x0, lo, hi);

    for (int i = 0; i < max_iter; ++i) {
        double fx = f(x);
        res.iterations = i + 1;
        if (std::abs(fx) < f_tol) {
            res.x = x;
            res.fx = fx;
            res.converged = true;
            return res;
        }
        double d = df(x);
        double next;
        if (d == 0.0 || !std::isfinite(d)) {
            next = 0.5 * (lo + hi); // derivative degenerate: bisect bracket
        } else {
            next = x - fx / d;
        }
        if (next < lo || next > hi || !std::isfinite(next)) {
            // Newton escaped the safety bracket: shrink the bracket on the
            // side indicated by the sign of f and bisect.
            if ((fx > 0.0) == (f(hi) > 0.0))
                hi = x;
            else
                lo = x;
            next = 0.5 * (lo + hi);
        }
        x = next;
    }
    res.x = x;
    res.fx = f(x);
    res.converged = std::abs(res.fx) < f_tol;
    return res;
}

SolveResult
goldenMax(const std::function<double(double)> &f, double lo, double hi,
          double x_tol, int max_iter)
{
    SC_ASSERT(lo <= hi, "goldenMax: inverted interval");
    static const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;

    SolveResult res;
    double a = lo;
    double b = hi;
    double c = b - inv_phi * (b - a);
    double d = a + inv_phi * (b - a);
    double fc = f(c);
    double fd = f(d);

    int i = 0;
    for (; i < max_iter && (b - a) > x_tol; ++i) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    res.iterations = i;
    res.converged = (b - a) <= x_tol;
    res.x = 0.5 * (a + b);
    res.fx = f(res.x);
    // Guard against a flat-topped function where an interior sample beat
    // the midpoint.
    if (fc > res.fx) {
        res.x = c;
        res.fx = fc;
    }
    if (fd > res.fx) {
        res.x = d;
        res.fx = fd;
    }
    return res;
}

double
lambertW0(double x)
{
    SC_ASSERT(x >= -1.0 / std::exp(1.0) - 1e-300,
              "lambertW0: argument below the branch point -1/e");
    if (x == 0.0)
        return 0.0;

    // Seed. Near the branch point the series in p = sqrt(2(e x + 1))
    // is accurate; elsewhere a log asymptote (large x) or the argument
    // itself (small x) lands within Halley's basin.
    double w;
    if (x < -0.25) {
        const double p = std::sqrt(2.0 * (std::exp(1.0) * x + 1.0));
        w = -1.0 + p - p * p / 3.0 + 11.0 / 72.0 * p * p * p;
    } else if (x < 3.0) {
        // W(x) ~ x (1 - x + 3/2 x^2) for |x| < 1; crude beyond, but the
        // iteration below converges from it throughout [-0.25, 3).
        w = x < 1.0 ? x * (1.0 - x + 1.5 * x * x) : std::log1p(x);
    } else {
        const double l1 = std::log(x);
        const double l2 = std::log(l1);
        w = l1 - l2 + l2 / l1;
    }

    // Halley iteration on f(w) = w e^w - x.
    for (int i = 0; i < 20; ++i) {
        const double ew = std::exp(w);
        const double f = w * ew - x;
        const double denom =
            ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        const double step = f / denom;
        if (!std::isfinite(step))
            break; // at the branch point the series seed is the answer
        w -= step;
        if (std::abs(step) <= 1e-16 * (1.0 + std::abs(w)))
            break;
    }
    return w;
}

double
lambertW0exp(double y)
{
    // For modest y the direct evaluation is exact and handles the
    // w <= 0 half of the range (exp(y) < e never overflows).
    if (y < 1.0)
        return lambertW0(std::exp(y));

    // Solve w + log(w) = y, w > 1: Newton with the asymptotic seed
    // w ~ y - log(y). g(w) = w + log w - y is increasing and concave,
    // so Newton from either side converges monotonically.
    double w = y - std::log(y);
    for (int i = 0; i < 20; ++i) {
        const double step =
            (w + std::log(w) - y) * w / (w + 1.0);
        w -= step;
        if (std::abs(step) <= 1e-16 * (1.0 + std::abs(w)))
            break;
    }
    return w;
}

bool
approxEqual(double a, double b, double tol)
{
    double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= tol * scale;
}

} // namespace solarcore
