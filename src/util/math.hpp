/**
 * @file
 * Scalar numerical routines shared across the library: bracketing and
 * Newton root finders, golden-section maximization, interpolation and
 * clamping helpers. All routines are deterministic and allocation-free.
 */

#ifndef SOLARCORE_UTIL_MATH_HPP
#define SOLARCORE_UTIL_MATH_HPP

#include <cstddef>
#include <functional>

namespace solarcore {

/** Result of an iterative scalar solve. */
struct SolveResult
{
    double x = 0.0;         //!< abscissa of the root / optimum
    double fx = 0.0;        //!< function value at x
    int iterations = 0;     //!< iterations consumed
    bool converged = false; //!< true if the tolerance was met
};

/**
 * Find a root of @p f on the bracket [lo, hi] by bisection.
 *
 * Requires f(lo) and f(hi) to have opposite signs (or one of them to be
 * zero). The bracket is halved until its width falls below @p x_tol or
 * @p max_iter iterations elapse.
 *
 * @param f        continuous function of one variable
 * @param lo       lower bracket end
 * @param hi       upper bracket end
 * @param x_tol    absolute tolerance on the bracket width
 * @param max_iter iteration cap
 * @return         the root estimate; `converged` false if the bracket
 *                 does not straddle a sign change
 */
SolveResult bisect(const std::function<double(double)> &f, double lo,
                   double hi, double x_tol = 1e-9, int max_iter = 200);

/**
 * Find a root of @p f by damped Newton iteration with numeric fallback.
 *
 * Uses the supplied analytic derivative @p df. When a step escapes the
 * [lo, hi] safety bracket the step is bisected against the bracket,
 * making the routine globally convergent for monotone f.
 */
SolveResult newton(const std::function<double(double)> &f,
                   const std::function<double(double)> &df, double x0,
                   double lo, double hi, double f_tol = 1e-10,
                   int max_iter = 100);

/**
 * Maximize a unimodal function on [lo, hi] by golden-section search.
 *
 * @return SolveResult with `x` the argmax and `fx` the maximum value.
 */
SolveResult goldenMax(const std::function<double(double)> &f, double lo,
                      double hi, double x_tol = 1e-6, int max_iter = 200);

/**
 * Principal branch of the Lambert W function: the solution w >= -1 of
 * w * exp(w) = x, defined for x >= -1/e.
 *
 * Seeded by the branch-point series near -1/e and the log asymptote
 * for large x, then polished by Halley iteration; accurate to machine
 * precision in 3-4 iterations. Used by the closed-form single-diode
 * I-V solve (pv/cell.cpp), which replaces a nested Newton loop on the
 * simulation's hottest path.
 */
double lambertW0(double x);

/**
 * Overflow-safe W0(exp(y)): the solution w > 0 of w + log(w) = y.
 *
 * Equivalent to lambertW0(std::exp(y)) but valid for any y, including
 * y > 709 where exp(y) itself overflows. The diode solve needs this
 * because its W argument is exp((V + Iph*Rs)/Vt) scaled by a tiny
 * prefactor -- representable only in log space.
 */
double lambertW0exp(double y);

/** Linear interpolation: value at t in [0,1] between a and b. */
constexpr double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

/** Clamp x into [lo, hi]. */
constexpr double
clamp(double x, double lo, double hi)
{
    return x < lo ? lo : (x > hi ? hi : x);
}

/** True if |a - b| <= tol * max(1, |a|, |b|). */
bool approxEqual(double a, double b, double tol = 1e-9);

} // namespace solarcore

#endif // SOLARCORE_UTIL_MATH_HPP
