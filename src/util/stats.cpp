#include "stats.hpp"

#include <algorithm>
#include <cmath>

#include "logging.hpp"

namespace solarcore {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n_tot = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / n_tot;
    mean_ = (na * mean_ + nb * other.mean_) / n_tot;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
GeometricMean::add(double x)
{
    logSum_ += std::log(std::max(x, floor_));
    ++n_;
}

double
GeometricMean::value() const
{
    if (n_ == 0)
        return 0.0;
    return std::exp(logSum_ / static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    SC_ASSERT(hi > lo && bins > 0, "Histogram: bad layout");
}

void
Histogram::add(double x)
{
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins()));
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(bins());
}

double
Histogram::binHigh(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
        static_cast<double>(bins());
}

} // namespace solarcore
