/**
 * @file
 * Column-aligned plain-text tables and CSV emission for the benchmark
 * harness. Every experiment binary prints a human-readable table that
 * mirrors the paper's rows/series, and can optionally emit the same
 * data as CSV for plotting.
 */

#ifndef SOLARCORE_UTIL_TABLE_HPP
#define SOLARCORE_UTIL_TABLE_HPP

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace solarcore {

/** A simple row-major text table with aligned console rendering. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row (cells are pre-formatted strings). */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 3);

    /** Convenience: format a ratio as a percentage string, e.g. 82.3%. */
    static std::string pct(double fraction, int precision = 1);

    /** Render with aligned columns to @p os. */
    void print(std::ostream &os) const;

    /** Render as RFC-4180-ish CSV to @p os. */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner (used between sub-tables in bench output). */
void printBanner(std::ostream &os, const std::string &title);

} // namespace solarcore

#endif // SOLARCORE_UTIL_TABLE_HPP
