/**
 * @file
 * Minimal logging and error-reporting helpers in the gem5 spirit.
 *
 * `panic` flags internal invariant violations (a bug in this library),
 * `fatal` flags unrecoverable user/configuration errors, and `warn` /
 * `inform` emit non-fatal diagnostics. All printing goes through
 * std::cerr so bench output on std::cout stays machine-parsable.
 *
 * A runtime threshold gates the non-fatal classes: messages below
 * `logLevel()` are dropped (Fatal/Panic always print and terminate).
 * The initial threshold comes from the SC_LOG_LEVEL environment
 * variable ("inform", "warn", "fatal"); setLogLevel() overrides it.
 * SC_WARN_ONCE emits at most once per call site -- per-step warnings
 * inside a 10-hour simulated day would otherwise flood stderr.
 */

#ifndef SOLARCORE_UTIL_LOGGING_HPP
#define SOLARCORE_UTIL_LOGGING_HPP

#include <atomic>
#include <sstream>
#include <string>

namespace solarcore {

/** Severity classes understood by detail::logMessage. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/** Current threshold: messages below it are suppressed. */
LogLevel logLevel();

/**
 * Last-gasp observer of terminal log records: invoked with the fully
 * formatted message right before a Fatal exit()/Panic abort(), so a
 * crash reporter (obs/flight_recorder) can persist a post-mortem. The
 * hook must not throw and must tolerate being called from any thread.
 */
using FatalHook = void (*)(LogLevel level, const char *msg);

/** Install @p hook (nullptr uninstalls). @return the previous hook. */
FatalHook setFatalHook(FatalHook hook);

/** Set the threshold at runtime (overrides SC_LOG_LEVEL). */
void setLogLevel(LogLevel level);

/**
 * Parse a threshold name ("inform"/"info", "warn", "fatal"/"quiet").
 * @return the parsed level, or @p fallback for unknown names
 */
LogLevel parseLogLevel(const std::string &name,
                       LogLevel fallback = LogLevel::Inform);

namespace detail {

/**
 * Emit a formatted log record and, for Fatal/Panic, terminate.
 * Inform/Warn records below the runtime threshold are dropped.
 *
 * @param level  severity class
 * @param file   originating source file (use __FILE__)
 * @param line   originating line (use __LINE__)
 * @param msg    fully formatted message body
 */
[[gnu::cold]] void logMessage(LogLevel level, const char *file, int line,
                              const std::string &msg);

/** Concatenate a heterogeneous argument pack into one string. */
template <typename... Args>
std::string
concat([[maybe_unused]] Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return {};
    } else {
        std::ostringstream os;
        (os << ... << std::forward<Args>(args));
        return os.str();
    }
}

} // namespace detail

} // namespace solarcore

/** Report an internal library bug and abort(). */
#define SC_PANIC(...)                                                        \
    ::solarcore::detail::logMessage(::solarcore::LogLevel::Panic, __FILE__, \
                                    __LINE__,                               \
                                    ::solarcore::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user error and exit(1). */
#define SC_FATAL(...)                                                        \
    ::solarcore::detail::logMessage(::solarcore::LogLevel::Fatal, __FILE__, \
                                    __LINE__,                               \
                                    ::solarcore::detail::concat(__VA_ARGS__))

/** Emit a non-fatal warning. */
#define SC_WARN(...)                                                         \
    ::solarcore::detail::logMessage(::solarcore::LogLevel::Warn, __FILE__,  \
                                    __LINE__,                               \
                                    ::solarcore::detail::concat(__VA_ARGS__))

/**
 * Emit a non-fatal warning at most once per call site (thread-safe;
 * repeated per-step warnings in long simulated days stay readable).
 */
#define SC_WARN_ONCE(...)                                                    \
    do {                                                                     \
        static std::atomic<bool> sc_warned_once_{false};                     \
        if (!sc_warned_once_.exchange(true, std::memory_order_relaxed)) {   \
            SC_WARN(__VA_ARGS__,                                            \
                    " (further occurrences of this warning suppressed)");   \
        }                                                                    \
    } while (false)

/** Emit an informational message. */
#define SC_INFORM(...)                                                       \
    ::solarcore::detail::logMessage(::solarcore::LogLevel::Inform, __FILE__,\
                                    __LINE__,                               \
                                    ::solarcore::detail::concat(__VA_ARGS__))

/** Assert an invariant that indicates a library bug when violated. */
#define SC_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            SC_PANIC("assertion failed: " #cond " ",                        \
                     ::solarcore::detail::concat(__VA_ARGS__));             \
        }                                                                    \
    } while (false)

#endif // SOLARCORE_UTIL_LOGGING_HPP
