#include "thread_pool.hpp"

#include <algorithm>

#include "logging.hpp"

namespace solarcore {

ThreadPool::ThreadPool(int threads)
    : threads_(threads >= 1 ? threads : hardwareThreads())
{
    // The caller is thread 0; only the extras are spawned.
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

int
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::runJob()
{
    // Claim indices until the job is exhausted. body_/count_ are
    // stable for the duration of a job, and a stale wakeup only ever
    // sees an exhausted counter -- it never dereferences body_.
    for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count_)
            return;
        try {
            (*body_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mutex_);
            if (!error_)
                error_ = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(mutex_);
    std::uint64_t seen = 0;
    for (;;) {
        wake_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        ++active_;
        lk.unlock();
        runJob();
        lk.lock();
        --active_;
        if (active_ == 0 && next_.load(std::memory_order_relaxed) >= count_)
            done_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        // Sequential degenerate case: no thread traffic, exceptions
        // propagate directly.
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::unique_lock<std::mutex> lk(mutex_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
    ++active_; // the caller participates
    wake_.notify_all();
    lk.unlock();

    runJob();

    lk.lock();
    --active_;
    done_.wait(lk, [&] {
        return active_ == 0 &&
            next_.load(std::memory_order_relaxed) >= count_;
    });
    body_ = nullptr;
    if (error_) {
        auto err = error_;
        error_ = nullptr;
        lk.unlock();
        std::rethrow_exception(err);
    }
}

} // namespace solarcore
