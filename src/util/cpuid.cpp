#include "cpuid.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define SOLARCORE_CPUID_X86 1
#endif

namespace solarcore {

namespace {

#ifdef SOLARCORE_CPUID_X86
/**
 * Read extended control register 0. The _xgetbv intrinsic requires
 * compiling the whole translation unit with -mxsave, which would defeat
 * the point of a baseline-ISA feature probe, so issue the instruction
 * directly (it is unprivileged whenever CPUID reports OSXSAVE).
 */
unsigned long long
readXcr0()
{
    unsigned int lo = 0, hi = 0;
    __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
    return (static_cast<unsigned long long>(hi) << 32) | lo;
}
#endif

bool
probeAvx2()
{
#ifdef SOLARCORE_CPUID_X86
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    // Leaf 1: OSXSAVE (the OS enabled XGETBV) + AVX + FMA.
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return false;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx = (ecx & (1u << 28)) != 0;
    const bool fma = (ecx & (1u << 12)) != 0;
    if (!osxsave || !avx || !fma)
        return false;
    // XGETBV: the OS must save XMM (bit 1) and YMM (bit 2) state.
    const unsigned long long xcr0 = readXcr0();
    if ((xcr0 & 0x6) != 0x6)
        return false;
    // Leaf 7 subleaf 0: the AVX2 bit itself.
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return false;
    return (ebx & (1u << 5)) != 0;
#else
    return false;
#endif
}

} // namespace

bool
cpuHasAvx2()
{
    static const bool has = probeAvx2();
    return has;
}

const char *
cpuSimdLevelName()
{
    return cpuHasAvx2() ? "avx2" : "baseline";
}

} // namespace solarcore
