#include "logging.hpp"

#include <cstdlib>
#include <iostream>

namespace solarcore {
namespace detail {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::cerr << levelName(level) << ": " << msg;
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        std::cerr << " (" << file << ":" << line << ")";
    std::cerr << std::endl;

    if (level == LogLevel::Panic)
        std::abort();
    if (level == LogLevel::Fatal)
        std::exit(1);
}

} // namespace detail
} // namespace solarcore
