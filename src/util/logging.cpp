#include "logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace solarcore {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

LogLevel
initialLogLevel()
{
    const char *env = std::getenv("SC_LOG_LEVEL");
    return env ? parseLogLevel(env) : LogLevel::Inform;
}

std::atomic<LogLevel> &
thresholdRef()
{
    static std::atomic<LogLevel> threshold{initialLogLevel()};
    return threshold;
}

} // namespace

namespace {

std::atomic<FatalHook> &
fatalHookRef()
{
    static std::atomic<FatalHook> hook{nullptr};
    return hook;
}

} // namespace

FatalHook
setFatalHook(FatalHook hook)
{
    return fatalHookRef().exchange(hook, std::memory_order_acq_rel);
}

LogLevel
logLevel()
{
    return thresholdRef().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    thresholdRef().store(level, std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &name, LogLevel fallback)
{
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "warn" || name == "warning")
        return LogLevel::Warn;
    if (name == "fatal" || name == "quiet")
        return LogLevel::Fatal;
    return fallback;
}

namespace detail {

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    const bool terminal = level == LogLevel::Fatal || level == LogLevel::Panic;
    if (!terminal && level < logLevel())
        return;

    std::cerr << levelName(level) << ": " << msg;
    if (terminal)
        std::cerr << " (" << file << ":" << line << ")";
    std::cerr << std::endl;

    if (terminal) {
        if (FatalHook hook =
                fatalHookRef().load(std::memory_order_acquire))
            hook(level, msg.c_str());
    }
    if (level == LogLevel::Panic)
        std::abort();
    if (level == LogLevel::Fatal)
        std::exit(1);
}

} // namespace detail
} // namespace solarcore
