/**
 * @file
 * FNV-1a hashing, shared by every component that keys on clear-text
 * material: the campaign journal header, the persistent unit-result
 * cache and the serve-layer query/result cache. One implementation so
 * the "hash of the key material, stored next to the material so a
 * collision reads as a miss" idiom stays byte-compatible across
 * layers.
 */

#ifndef SOLARCORE_UTIL_HASH_HPP
#define SOLARCORE_UTIL_HASH_HPP

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace solarcore::util {

inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/** Fold one byte into a running FNV-1a state. */
constexpr std::uint64_t
fnv1aByte(std::uint64_t h, unsigned char byte)
{
    return (h ^ byte) * kFnv1aPrime;
}

/** FNV-1a over @p text, continuing from @p seed. */
constexpr std::uint64_t
fnv1a(std::string_view text, std::uint64_t seed = kFnv1aOffset)
{
    std::uint64_t h = seed;
    for (const char c : text)
        h = fnv1aByte(h, static_cast<unsigned char>(c));
    return h;
}

/** Lower-case hex form of fnv1a(text) -- file stems, cache keys. */
inline std::string
fnv1aHex(std::string_view text, std::uint64_t seed = kFnv1aOffset)
{
    char buf[17];
    const auto r =
        std::to_chars(buf, buf + sizeof(buf), fnv1a(text, seed), 16);
    return std::string(buf, r.ptr);
}

} // namespace solarcore::util

#endif // SOLARCORE_UTIL_HASH_HPP
