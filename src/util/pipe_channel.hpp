/**
 * @file
 * Length-prefixed frame IO over POSIX pipes.
 *
 * The multi-process campaign runner streams unit results and stats
 * payloads from forked workers back to the parent. Each frame is a
 * 32-bit native-endian length followed by that many payload bytes;
 * writers emit whole frames under EINTR/partial-write retry, and the
 * reader accumulates nonblocking reads into an internal buffer and
 * yields only complete frames -- a frame is either delivered whole or
 * (on a mid-frame crash) discarded with the connection.
 *
 * POSIX-only: on platforms without fork()/pipe() the campaign falls
 * back to the in-process thread pool (pipeChannelSupported() reports
 * which world we are in).
 */

#ifndef SOLARCORE_UTIL_PIPE_CHANNEL_HPP
#define SOLARCORE_UTIL_PIPE_CHANNEL_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace solarcore::util {

/** True when fork()/pipe() process sharding is available. */
bool pipeChannelSupported();

/**
 * Write one [u32 length][payload] frame to @p fd, retrying partial
 * writes. @return false on a write error (e.g. the reader died).
 */
bool writeFrame(int fd, const void *data, std::size_t size);

/** Incremental frame reassembly for one nonblocking pipe fd. */
class FrameReader
{
  public:
    FrameReader() = default;

    /** What drain() observed on the fd. */
    enum class Status
    {
        Open,    //!< fd still open; zero or more frames extracted
        Closed,  //!< EOF (writer exited); remaining frames extracted
        Error,   //!< read error; treat like a crash
    };

    /**
     * Pull all currently-available bytes from @p fd (which must be
     * O_NONBLOCK) and append every completed frame to @p frames.
     */
    Status drain(int fd, std::vector<std::string> &frames);

    /** Bytes of an incomplete trailing frame (crash diagnostics). */
    std::size_t pendingBytes() const { return buffer_.size(); }

    /**
     * Reject frames whose declared length exceeds @p bytes: drain()
     * reports Error instead of buffering towards a 4 GiB allocation.
     * The campaign pipes trust their forked writers and leave this
     * unlimited (0); the serve codec caps every client connection.
     */
    void setMaxFrameBytes(std::size_t bytes) { maxFrameBytes_ = bytes; }

  private:
    std::string buffer_;
    std::size_t maxFrameBytes_ = 0; //!< 0 = unlimited
};

} // namespace solarcore::util

#endif // SOLARCORE_UTIL_PIPE_CHANNEL_HPP
