#include "pipe_channel.hpp"

#include <cstdint>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define SC_HAVE_PIPES 1
#include <cerrno>
#include <unistd.h>
#else
#define SC_HAVE_PIPES 0
#endif

namespace solarcore::util {

bool
pipeChannelSupported()
{
    return SC_HAVE_PIPES != 0;
}

#if SC_HAVE_PIPES

namespace {

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, const void *data, std::size_t size)
{
    const std::uint32_t len = static_cast<std::uint32_t>(size);
    char prefix[sizeof(len)];
    std::memcpy(prefix, &len, sizeof(len));
    return writeAll(fd, prefix, sizeof(prefix)) &&
        writeAll(fd, static_cast<const char *>(data), size);
}

FrameReader::Status
FrameReader::drain(int fd, std::vector<std::string> &frames)
{
    Status status = Status::Open;
    char chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            status = Status::Closed;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        status = Status::Error;
        break;
    }

    std::size_t pos = 0;
    while (buffer_.size() - pos >= sizeof(std::uint32_t)) {
        std::uint32_t len = 0;
        std::memcpy(&len, buffer_.data() + pos, sizeof(len));
        if (maxFrameBytes_ != 0 && len > maxFrameBytes_) {
            // A hostile/corrupt length prefix: never accumulate
            // towards it, surface the connection as broken.
            buffer_.erase(0, pos);
            return Status::Error;
        }
        if (buffer_.size() - pos - sizeof(len) < len)
            break;
        frames.emplace_back(buffer_, pos + sizeof(len), len);
        pos += sizeof(len) + len;
    }
    buffer_.erase(0, pos);
    return status;
}

#else // !SC_HAVE_PIPES

bool
writeFrame(int, const void *, std::size_t)
{
    return false;
}

FrameReader::Status
FrameReader::drain(int, std::vector<std::string> &)
{
    return Status::Error;
}

#endif

} // namespace solarcore::util
