/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The library never uses std::random_device or the global C RNG: every
 * stochastic component (weather regimes, workload phase jitter, sensor
 * noise) takes an explicit seed so that traces, tests and benchmark
 * tables reproduce bit-identically across runs and platforms. The
 * engine is xoshiro256**, seeded through SplitMix64.
 */

#ifndef SOLARCORE_UTIL_RANDOM_HPP
#define SOLARCORE_UTIL_RANDOM_HPP

#include <cstdint>

namespace solarcore {

/**
 * xoshiro256** generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator requirements, so it can also
 * feed <random> distributions if ever needed, but the built-in helpers
 * below are preferred because libstdc++ distribution algorithms are not
 * specified to be stable across versions.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x5eed5007a9c0de01ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit draw. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal draw (Box-Muller, deterministic). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

    /**
     * Derive an independent child stream. Children with distinct tags
     * from the same parent state are statistically independent; used to
     * give each site/month/benchmark its own stream without coupling.
     */
    Rng fork(std::uint64_t tag);

  private:
    std::uint64_t s_[4];
    double spare_ = 0.0;     //!< cached second Box-Muller variate
    bool hasSpare_ = false;
};

} // namespace solarcore

#endif // SOLARCORE_UTIL_RANDOM_HPP
