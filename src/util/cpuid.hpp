/**
 * @file
 * Runtime CPU feature detection for the SIMD kernel dispatch.
 *
 * The batch PV kernels (pv/pv_kernel.hpp) are compiled per ISA behind
 * compile-time gates; this header answers the *runtime* question "may
 * this binary execute AVX2 instructions on this machine?". The answer
 * requires both the CPUID feature bit and OS support for saving the
 * wide register state (XGETBV), so a plain feature-bit probe is not
 * enough on its own.
 */

#ifndef SOLARCORE_UTIL_CPUID_HPP
#define SOLARCORE_UTIL_CPUID_HPP

namespace solarcore {

/**
 * True when the running CPU supports AVX2 + FMA *and* the OS saves the
 * YMM register state across context switches. Always false on
 * non-x86-64 builds. The probe runs once; subsequent calls return the
 * cached answer.
 */
bool cpuHasAvx2();

/** Short human-readable ISA summary for manifests ("avx2", "baseline"). */
const char *cpuSimdLevelName();

} // namespace solarcore

#endif // SOLARCORE_UTIL_CPUID_HPP
