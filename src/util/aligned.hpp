/**
 * @file
 * Cache-line / SIMD-register aligned storage for the batch kernels.
 *
 * The structure-of-arrays PV kernels load 4-wide double vectors; an
 * AlignedVector guarantees the base pointer sits on a 64-byte boundary
 * so every full lane group is a single aligned load on any current
 * ISA (and never straddles a cache line).
 */

#ifndef SOLARCORE_UTIL_ALIGNED_HPP
#define SOLARCORE_UTIL_ALIGNED_HPP

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace solarcore {

/** Minimal C++17 allocator with a fixed over-alignment. */
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator
{
    static_assert((Alignment & (Alignment - 1)) == 0,
                  "alignment must be a power of two");
    static_assert(Alignment >= alignof(T),
                  "alignment below the type's natural alignment");

    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n == 0)
            return nullptr;
        void *p = ::operator new(n * sizeof(T),
                                 std::align_val_t(Alignment));
        return static_cast<T *>(p);
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, std::align_val_t(Alignment));
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Alignment>;
    };

    bool operator==(const AlignedAllocator &) const { return true; }
};

/** A std::vector whose data() is 64-byte aligned. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

} // namespace solarcore

#endif // SOLARCORE_UTIL_ALIGNED_HPP
