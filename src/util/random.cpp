#include "random.hpp"

#include <cmath>

#include "logging.hpp"

namespace solarcore {

namespace {

/** SplitMix64 step, used for seeding and stream derivation. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 significant bits -> uniform in [0, 1).
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    SC_ASSERT(lo <= hi, "uniformInt: inverted range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    // Rejection sampling for exact uniformity.
    const std::uint64_t limit = (~0ull / span) * span;
    std::uint64_t draw;
    do {
        draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(two_pi * u2);
    hasSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t tag)
{
    // Mix the current state with the tag through SplitMix64 so child
    // streams are decorrelated from the parent and from each other.
    std::uint64_t mix = s_[0] ^ rotl(s_[2], 31) ^ (tag * 0x9e3779b97f4a7c15ull);
    return Rng(splitmix64(mix));
}

} // namespace solarcore
