/**
 * @file
 * Streaming statistics accumulators used by the simulation metrics and
 * the benchmark harness: arithmetic mean/variance (Welford), geometric
 * mean (the paper's Table 7 aggregates tracking error geometrically),
 * min/max, and a simple fixed-bin histogram.
 */

#ifndef SOLARCORE_UTIL_STATS_HPP
#define SOLARCORE_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace solarcore {

/** Streaming mean / variance / extrema accumulator (Welford's method). */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples seen. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Streaming geometric mean over strictly positive samples.
 *
 * Zero or negative samples are clamped to @p floor first (the paper's
 * relative-error metric can legitimately be 0 when the margin closes,
 * and geomean of a set containing 0 would collapse to 0).
 */
class GeometricMean
{
  public:
    explicit GeometricMean(double floor = 1e-12) : floor_(floor) {}

    void add(double x);
    std::size_t count() const { return n_; }
    double value() const;

  private:
    double floor_;
    double logSum_ = 0.0;
    std::size_t n_ = 0;
};

/** Fixed-width histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::size_t bin(std::size_t i) const { return counts_.at(i); }
    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace solarcore

#endif // SOLARCORE_UTIL_STATS_HPP
