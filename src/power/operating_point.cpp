#include "operating_point.hpp"

#include <cmath>

#include "obs/profiler.hpp"
#include "pv/mpp.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::power {

double
loadResistance(double v_rail, double demand_w)
{
    SC_ASSERT(v_rail > 0.0 && demand_w > 0.0,
              "loadResistance: non-positive inputs");
    return v_rail * v_rail / demand_w;
}

NetworkState
solveNetwork(const pv::IvSource &source, const DcDcConverter &conv,
             double load_ohm)
{
    SC_ASSERT(load_ohm > 0.0, "solveNetwork: non-positive load");
    NetworkState st;

    const double voc = source.openCircuitVoltage();
    if (voc <= 0.0)
        return st; // dark panel: no solution

    const double k = conv.ratio();
    // Rail current balance: converter output vs load-line draw.
    auto mismatch = [&](double v_rail) {
        const double i_in = source.currentAt(conv.inputVoltage(v_rail));
        return conv.outputCurrent(i_in) - v_rail / load_ohm;
    };
    const double v_hi = voc / k;
    const auto root = bisect(mismatch, 0.0, v_hi, 1e-9 * v_hi + 1e-12);
    if (!root.converged)
        return st;

    st.load.voltage = root.x;
    st.load.current = root.x / load_ohm;
    st.panel.voltage = conv.inputVoltage(root.x);
    st.panel.current = source.currentAt(st.panel.voltage);
    st.valid = true;
    return st;
}

NetworkState
pinRailVoltage(const pv::IvSource &source, DcDcConverter &conv,
               double v_rail, double demand_w)
{
    SC_ASSERT(v_rail > 0.0 && demand_w > 0.0,
              "pinRailVoltage: non-positive inputs");
    SC_PROFILE_SCOPE("network.pin");
    NetworkState st;

    const double voc = source.openCircuitVoltage();
    if (voc <= 0.0)
        return st;

    // The panel must source the demand plus converter loss. A uniform
    // array takes the analytic MPP fast path; this solve dominates the
    // controller's sustainable() probes, the simulation's hottest loop.
    const double p_needed = demand_w / conv.efficiency();
    const auto *array = dynamic_cast<const pv::PvArray *>(&source);
    const auto mpp = array ? pv::findMpp(*array) : pv::findMpp(source);
    if (p_needed > mpp.power)
        return st; // rail would collapse

    // Stable branch: panel voltage in [Vmpp, Voc], where P(v) falls
    // monotonically from Pmpp to zero.
    auto mismatch = [&](double v_panel) {
        return v_panel * source.currentAt(v_panel) - p_needed;
    };
    const auto root = bisect(mismatch, mpp.voltage, voc, 1e-10 * voc);
    if (!root.converged)
        return st;

    const double k = root.x / v_rail;
    if (k < conv.kMin() || k > conv.kMax())
        return st; // ratio out of the converter's range

    conv.setRatio(k);
    st.panel.voltage = root.x;
    st.panel.current = source.currentAt(root.x);
    st.load.voltage = v_rail;
    st.load.current = demand_w / v_rail;
    st.valid = true;
    return st;
}

NetworkState
pinRailVoltage(const pv::PreparedArray &array, DcDcConverter &conv,
               double v_rail, double demand_w)
{
    SC_ASSERT(v_rail > 0.0 && demand_w > 0.0,
              "pinRailVoltage: non-positive inputs");
    SC_PROFILE_SCOPE("network.pinPrepared");
    NetworkState st;

    if (array.dark())
        return st;

    // Same decision sequence as the IvSource overload; the MPP is the
    // cached legacy-identical value, so the feasibility boundary
    // cannot shift between the two paths.
    const double p_needed = demand_w / conv.efficiency();
    if (p_needed > array.mpp().power)
        return st; // rail would collapse

    double v_panel = 0.0;
    double i_panel = 0.0;
    if (!array.solveStableBranch(p_needed, v_panel, i_panel))
        return st;

    const double k = v_panel / v_rail;
    if (k < conv.kMin() || k > conv.kMax())
        return st; // ratio out of the converter's range

    conv.setRatio(k);
    st.panel.voltage = v_panel;
    st.panel.current = i_panel;
    st.load.voltage = v_rail;
    st.load.current = demand_w / v_rail;
    st.valid = true;
    return st;
}

} // namespace solarcore::power
