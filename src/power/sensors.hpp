/**
 * @file
 * Front-end I/V sensing (paper Figure 8): the SolarCore controller
 * observes load current and voltage through sensors with finite
 * resolution and optional gaussian noise. Quantization models the ADC
 * in the measurement path; both default to ideal for deterministic
 * experiments and can be degraded for robustness studies.
 */

#ifndef SOLARCORE_POWER_SENSORS_HPP
#define SOLARCORE_POWER_SENSORS_HPP

#include "pv/module.hpp"
#include "util/random.hpp"

namespace solarcore::power {

/** One current/voltage sensor pair at a network port. */
class IvSensor
{
  public:
    /**
     * @param voltage_lsb quantization step for voltage [V]; 0 = ideal
     * @param current_lsb quantization step for current [A]; 0 = ideal
     * @param noise_frac  relative gaussian noise sigma; 0 = ideal
     * @param seed        noise stream seed
     */
    explicit IvSensor(double voltage_lsb = 0.0, double current_lsb = 0.0,
                      double noise_frac = 0.0, std::uint64_t seed = 1);

    /** Measure an operating point through the sensor chain. */
    pv::OperatingPoint measure(const pv::OperatingPoint &actual);

    /** Measured power (applies the same chain to V and I). */
    double measurePower(const pv::OperatingPoint &actual);

  private:
    double quantize(double value, double lsb) const;

    double voltageLsb_;
    double currentLsb_;
    double noiseFrac_;
    Rng rng_;
};

} // namespace solarcore::power

#endif // SOLARCORE_POWER_SENSORS_HPP
