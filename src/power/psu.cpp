#include "psu.hpp"

#include "util/logging.hpp"

namespace solarcore::power {

Psu
Psu::paperDefault()
{
    Psu psu;
    // The processor rail rides the solar path; everything else stays
    // on the utility (paper Section 4.1).
    psu.addRail({"12V-CPU", 12.0, PowerSource::Solar, 0.0, 250.0});
    psu.addRail({"12V-peripheral", 12.0, PowerSource::Grid, 0.0, 150.0});
    psu.addRail({"5V-logic", 5.0, PowerSource::Grid, 0.0, 60.0});
    return psu;
}

int
Psu::addRail(PsuRail rail)
{
    SC_ASSERT(rail.voltage > 0.0 && rail.maxW > 0.0, "Psu: bad rail");
    SC_ASSERT(rail.loadW >= 0.0 && rail.loadW <= rail.maxW,
              "Psu: initial load outside rating");
    rails_.push_back(std::move(rail));
    return static_cast<int>(rails_.size()) - 1;
}

const PsuRail &
Psu::rail(int index) const
{
    SC_ASSERT(index >= 0 && index < railCount(), "Psu: bad rail index");
    return rails_[static_cast<std::size_t>(index)];
}

void
Psu::setLoad(int index, double watts)
{
    SC_ASSERT(index >= 0 && index < railCount(), "Psu: bad rail index");
    auto &r = rails_[static_cast<std::size_t>(index)];
    if (watts < 0.0 || watts > r.maxW)
        SC_FATAL("Psu: load ", watts, " W outside rail '", r.name,
                 "' rating of ", r.maxW, " W");
    r.loadW = watts;
}

void
Psu::setSource(int index, PowerSource source)
{
    SC_ASSERT(index >= 0 && index < railCount(), "Psu: bad rail index");
    rails_[static_cast<std::size_t>(index)].source = source;
}

double
Psu::drawFrom(PowerSource source) const
{
    double w = 0.0;
    for (const auto &r : rails_) {
        if (r.source == source)
            w += r.loadW;
    }
    return w;
}

double
Psu::totalLoad() const
{
    double w = 0.0;
    for (const auto &r : rails_)
        w += r.loadW;
    return w;
}

void
Psu::accountEnergy(double seconds)
{
    SC_ASSERT(seconds >= 0.0, "Psu: negative time");
    solarWh_ += drawFrom(PowerSource::Solar) * seconds / 3600.0;
    gridWh_ += drawFrom(PowerSource::Grid) * seconds / 3600.0;
}

} // namespace solarcore::power
