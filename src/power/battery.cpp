#include "battery.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace solarcore::power {

DeRating
deRating(BatteryLevel level)
{
    // Paper Table 3.
    switch (level) {
      case BatteryLevel::High:     return {0.97, 0.95};
      case BatteryLevel::Moderate: return {0.95, 0.85};
      case BatteryLevel::Low:      return {0.93, 0.75};
    }
    SC_PANIC("deRating: bad level");
    return {0.0, 0.0};
}

Battery::Battery(double capacity_wh, double charge_eff, double discharge_eff,
                 double self_discharge)
    : capacityWh_(capacity_wh), chargeEff_(charge_eff),
      dischargeEff_(discharge_eff), selfDischargePerHour_(self_discharge)
{
    SC_ASSERT(capacity_wh > 0.0, "Battery: non-positive capacity");
    SC_ASSERT(charge_eff > 0.0 && charge_eff <= 1.0 && discharge_eff > 0.0 &&
                  discharge_eff <= 1.0,
              "Battery: efficiencies out of (0, 1]");
}

double
Battery::charge(double power_w, double hours)
{
    SC_ASSERT(power_w >= 0.0 && hours >= 0.0, "Battery::charge: negative");
    const double offered = power_w * hours;
    const double storable = (capacityWh_ - storedWh_) / chargeEff_;
    const double absorbed = std::min(offered, storable);
    storedWh_ += absorbed * chargeEff_;
    absorbedWh_ += absorbed;
    lostWh_ += absorbed * (1.0 - chargeEff_);
    if (trace_) {
        traceMode(static_cast<int>(absorbed > 0.0
                                       ? obs::BatteryMode::Charge
                                       : obs::BatteryMode::Idle));
    }
    return absorbed;
}

double
Battery::discharge(double power_w, double hours)
{
    SC_ASSERT(power_w >= 0.0 && hours >= 0.0,
              "Battery::discharge: negative");
    const double wanted = power_w * hours;
    const double available = storedWh_ * dischargeEff_;
    const double delivered = std::min(wanted, available);
    const double removed = delivered / dischargeEff_;
    storedWh_ -= removed;
    lostWh_ += removed - delivered;
    deliveredWh_ += delivered;
    if (trace_) {
        traceMode(static_cast<int>(delivered > 0.0
                                       ? obs::BatteryMode::Discharge
                                       : obs::BatteryMode::Idle));
    }
    return delivered;
}

void
Battery::traceMode(int mode)
{
    if (mode == lastMode_)
        return;
    lastMode_ = mode;
    obs::TraceEvent e;
    e.kind = obs::EventKind::BatteryMode;
    e.arg0 = static_cast<std::uint8_t>(mode);
    e.v0 = socFraction();
    trace_->emit(e);
}

void
Battery::idle(double hours)
{
    const double lost = storedWh_ * selfDischargePerHour_ * hours;
    storedWh_ = std::max(0.0, storedWh_ - lost);
    lostWh_ += lost;
}

} // namespace solarcore::power
