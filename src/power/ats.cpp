#include "ats.hpp"

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace solarcore::power {

TransferSwitch::TransferSwitch(double threshold_w, double hysteresis_w,
                               double switch_back_delay_sec)
    : thresholdW_(threshold_w), hysteresisW_(hysteresis_w),
      switchBackDelaySec_(switch_back_delay_sec)
{
    SC_ASSERT(threshold_w >= 0.0 && hysteresis_w >= 0.0 &&
                  switch_back_delay_sec >= 0.0,
              "TransferSwitch: negative thresholds");
}

PowerSource
TransferSwitch::update(double available_solar_w, double dt_seconds)
{
    if (source_ == PowerSource::Grid) {
        if (available_solar_w >= thresholdW_ + hysteresisW_) {
            stableAboveSec_ += dt_seconds;
            if (stableAboveSec_ >= switchBackDelaySec_) {
                source_ = PowerSource::Solar;
                ++transfers_;
                if (trace_)
                    traceTransfer(available_solar_w);
            }
        } else {
            stableAboveSec_ = 0.0;
        }
    } else {
        if (available_solar_w < thresholdW_) {
            source_ = PowerSource::Grid;
            stableAboveSec_ = 0.0;
            ++transfers_;
            if (trace_)
                traceTransfer(available_solar_w);
        }
    }
    return source_;
}

void
TransferSwitch::force(PowerSource src)
{
    if (src != source_ && trace_) {
        source_ = src;
        traceTransfer(0.0);
        return;
    }
    source_ = src;
}

void
TransferSwitch::traceTransfer(double available_solar_w)
{
    obs::TraceEvent e;
    e.kind = obs::EventKind::AtsTransfer;
    e.arg0 = source_ == PowerSource::Solar ? 1 : 0;
    e.v0 = available_solar_w;
    e.i0 = transfers_;
    trace_->emit(e);
}

void
TransferSwitch::accountEnergy(double watts, double seconds)
{
    SC_ASSERT(watts >= 0.0 && seconds >= 0.0,
              "TransferSwitch: negative energy");
    const double wh = watts * seconds / 3600.0;
    if (source_ == PowerSource::Solar) {
        solarWh_ += wh;
        solarSec_ += seconds;
    } else {
        gridWh_ += wh;
        gridSec_ += seconds;
    }
}

} // namespace solarcore::power
