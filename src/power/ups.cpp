#include "ups.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace solarcore::power {

Ups::Ups(double capacity_wh, double max_power_w, double recharge_w)
    : capacityWh_(capacity_wh), maxPowerW_(max_power_w),
      rechargeW_(recharge_w), storedWh_(capacity_wh)
{
    SC_ASSERT(capacity_wh > 0.0 && max_power_w > 0.0 && recharge_w >= 0.0,
              "Ups: bad parameters");
}

bool
Ups::bridge(double load_w, double seconds)
{
    SC_ASSERT(load_w >= 0.0 && seconds >= 0.0, "Ups::bridge: negative");
    if (load_w > maxPowerW_) {
        ++brownouts_;
        return false;
    }
    const double needed_wh = load_w * seconds / 3600.0;
    if (needed_wh > storedWh_) {
        deliveredWh_ += storedWh_;
        storedWh_ = 0.0;
        ++brownouts_;
        return false;
    }
    storedWh_ -= needed_wh;
    deliveredWh_ += needed_wh;
    return true;
}

void
Ups::recharge(double seconds)
{
    SC_ASSERT(seconds >= 0.0, "Ups::recharge: negative");
    storedWh_ = std::min(capacityWh_,
                         storedWh_ + rechargeW_ * seconds / 3600.0);
}

double
Ups::holdupSeconds(double load_w) const
{
    if (load_w <= 0.0)
        return 3600.0 * 24.0; // effectively unlimited at no load
    if (load_w > maxPowerW_)
        return 0.0;
    return storedWh_ / load_w * 3600.0;
}

} // namespace solarcore::power
