#include "sensors.hpp"

#include <cmath>

namespace solarcore::power {

IvSensor::IvSensor(double voltage_lsb, double current_lsb, double noise_frac,
                   std::uint64_t seed)
    : voltageLsb_(voltage_lsb), currentLsb_(current_lsb),
      noiseFrac_(noise_frac), rng_(seed)
{
}

double
IvSensor::quantize(double value, double lsb) const
{
    if (lsb <= 0.0)
        return value;
    return std::round(value / lsb) * lsb;
}

pv::OperatingPoint
IvSensor::measure(const pv::OperatingPoint &actual)
{
    pv::OperatingPoint out = actual;
    if (noiseFrac_ > 0.0) {
        out.voltage *= 1.0 + rng_.gaussian(0.0, noiseFrac_);
        out.current *= 1.0 + rng_.gaussian(0.0, noiseFrac_);
    }
    out.voltage = quantize(out.voltage, voltageLsb_);
    out.current = quantize(out.current, currentLsb_);
    return out;
}

double
IvSensor::measurePower(const pv::OperatingPoint &actual)
{
    return measure(actual).power();
}

} // namespace solarcore::power
