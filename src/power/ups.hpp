/**
 * @file
 * Uninterruptible power supply (paper Figure 8): bridges the load
 * across automatic-transfer-switch events so the chip never browns
 * out. The paper assumes the UPS is ideal; this model gives it a
 * finite energy reservoir and a finite power rating, so a deployment
 * study can check that transfer frequency and load stay within what a
 * small UPS can actually bridge.
 */

#ifndef SOLARCORE_POWER_UPS_HPP
#define SOLARCORE_POWER_UPS_HPP

namespace solarcore::power {

/** A finite-capacity ride-through UPS. */
class Ups
{
  public:
    /**
     * @param capacity_wh usable reservoir energy
     * @param max_power_w maximum deliverable bridging power
     * @param recharge_w  recharge power drawn after a bridge event
     */
    explicit Ups(double capacity_wh = 5.0, double max_power_w = 250.0,
                 double recharge_w = 20.0);

    double capacityWh() const { return capacityWh_; }
    double storedWh() const { return storedWh_; }
    double maxPowerW() const { return maxPowerW_; }

    /**
     * Bridge @p load_w for @p seconds during a transfer.
     * @return true if the UPS fully carried the load; false on a
     *         brownout (load above rating or reservoir exhausted)
     */
    bool bridge(double load_w, double seconds);

    /** Recharge from the active source for @p seconds. */
    void recharge(double seconds);

    /** Total energy delivered across all bridge events [Wh]. */
    double deliveredWh() const { return deliveredWh_; }

    /** Number of bridge events that ended in a brownout. */
    int brownouts() const { return brownouts_; }

    /** Longest continuous bridge sustainable at @p load_w [s]. */
    double holdupSeconds(double load_w) const;

  private:
    double capacityWh_;
    double maxPowerW_;
    double rechargeW_;
    double storedWh_;
    double deliveredWh_ = 0.0;
    int brownouts_ = 0;
};

} // namespace solarcore::power

#endif // SOLARCORE_POWER_UPS_HPP
