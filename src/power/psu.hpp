/**
 * @file
 * Multi-rail power supply unit (paper Section 4.1: "today's power
 * supply unit has multiple output rails which can be leveraged to
 * power different system components with different power supplies",
 * citing the ATX12V design guide).
 *
 * In the paper's system only the processor rail hangs off the solar
 * path; memory, disk and the rest stay on the utility. This model
 * tracks per-rail loads and sources so a full-system study can split
 * the energy ledgers the same way.
 */

#ifndef SOLARCORE_POWER_PSU_HPP
#define SOLARCORE_POWER_PSU_HPP

#include <string>
#include <vector>

#include "power/ats.hpp"

namespace solarcore::power {

/** One output rail of the PSU. */
struct PsuRail
{
    std::string name;        //!< e.g. "12V-CPU", "12V-peripheral"
    double voltage = 12.0;   //!< nominal rail voltage
    PowerSource source = PowerSource::Grid; //!< feeding path
    double loadW = 0.0;      //!< current load on the rail
    double maxW = 300.0;     //!< rating
};

/** A PSU with independently sourced rails. */
class Psu
{
  public:
    /** Build with the paper's split: CPU rail + peripheral rail. */
    static Psu paperDefault();

    /** Add a rail; returns its index. */
    int addRail(PsuRail rail);

    int railCount() const { return static_cast<int>(rails_.size()); }
    const PsuRail &rail(int index) const;

    /** Set the load on a rail [W]; fatal if above the rating. */
    void setLoad(int index, double watts);

    /** Re-source a rail (the ATS switching the CPU rail). */
    void setSource(int index, PowerSource source);

    /** Total load currently drawn from @p source across rails [W]. */
    double drawFrom(PowerSource source) const;

    /** Total load across all rails [W]. */
    double totalLoad() const;

    /** Accumulate energy ledgers over @p seconds at current loads. */
    void accountEnergy(double seconds);

    double solarWh() const { return solarWh_; }
    double gridWh() const { return gridWh_; }

  private:
    std::vector<PsuRail> rails_;
    double solarWh_ = 0.0;
    double gridWh_ = 0.0;
};

} // namespace solarcore::power

#endif // SOLARCORE_POWER_PSU_HPP
