/**
 * @file
 * Battery-equipped PV system models (paper Section 5, Table 3).
 *
 * Two layers: the de-rating bookkeeping the paper uses to bound the
 * utilization of battery-based MPPT systems (MPPT conversion x battery
 * round-trip efficiency), and a state-of-charge battery model used by
 * the examples and for failure-injection tests.
 */

#ifndef SOLARCORE_POWER_BATTERY_HPP
#define SOLARCORE_POWER_BATTERY_HPP

namespace solarcore::obs {
class TraceBuffer;
} // namespace solarcore::obs

namespace solarcore::power {

/** Table 3 performance levels of battery-based PV systems. */
enum class BatteryLevel { High, Moderate, Low };

/** De-rating factors of one performance level (Table 3). */
struct DeRating
{
    double mpptTrackingEff;  //!< MPPT controller conversion efficiency
    double batteryRoundTrip; //!< battery round-trip efficiency

    /** Overall factor = product of the two. */
    double overall() const { return mpptTrackingEff * batteryRoundTrip; }
};

/** Table 3 row for a level: High 97%/95%, Moderate 95%/85%, Low 93%/75%. */
DeRating deRating(BatteryLevel level);

/**
 * The paper's Battery-U / Battery-L bounds for high-efficiency
 * battery-equipped systems: 0.92 and 0.81 overall.
 */
inline constexpr double kBatteryUpperBound = 0.92;
inline constexpr double kBatteryLowerBound = 0.81;

/** A simple state-of-charge battery with asymmetric efficiency. */
class Battery
{
  public:
    /**
     * @param capacity_wh    usable capacity [Wh]
     * @param charge_eff     energy stored / energy offered
     * @param discharge_eff  energy delivered / energy removed
     * @param self_discharge fraction of stored energy lost per hour
     */
    Battery(double capacity_wh, double charge_eff = 0.95,
            double discharge_eff = 0.90, double self_discharge = 1e-4);

    double capacityWh() const { return capacityWh_; }
    double storedWh() const { return storedWh_; }
    double socFraction() const { return storedWh_ / capacityWh_; }

    /**
     * Offer @p power_w for @p hours of charging.
     * @return energy actually absorbed from the source [Wh]
     */
    double charge(double power_w, double hours);

    /**
     * Request @p power_w for @p hours of discharge.
     * @return energy actually delivered to the load [Wh]
     */
    double discharge(double power_w, double hours);

    /** Apply self-discharge over @p hours. */
    void idle(double hours);

    /**
     * Attach a trace sink (nullptr detaches): transitions between
     * idle/charge/discharge operation emit BatteryMode events with the
     * state of charge, stamped with the sink's simulated time.
     */
    void setTrace(obs::TraceBuffer *trace) { trace_ = trace; }

    /** Lifetime energy absorbed from the source while charging [Wh].
     *  Ledger closure: absorbed == stored + delivered + lost. */
    double absorbedWh() const { return absorbedWh_; }

    /** Lifetime energy throughput (delivered) [Wh]. */
    double deliveredWh() const { return deliveredWh_; }

    /** Cumulative energy lost to inefficiency/self-discharge [Wh]. */
    double lostWh() const { return lostWh_; }

  private:
    /** Emit a BatteryMode event when the operating mode changed. */
    void traceMode(int mode);

    obs::TraceBuffer *trace_ = nullptr;
    int lastMode_ = 0; //!< obs::BatteryMode as int (Idle)
    double capacityWh_;
    double chargeEff_;
    double dischargeEff_;
    double selfDischargePerHour_;
    double storedWh_ = 0.0;
    double absorbedWh_ = 0.0;
    double deliveredWh_ = 0.0;
    double lostWh_ = 0.0;
};

} // namespace solarcore::power

#endif // SOLARCORE_POWER_BATTERY_HPP
