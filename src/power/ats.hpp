/**
 * @file
 * Automatic transfer switch + UPS + energy accounting (paper Figure 8).
 *
 * The chip is fed from the solar path when the panel can sustain the
 * power-transfer threshold, and from grid utility otherwise. Hysteresis
 * around the threshold avoids chattering near dawn/dusk; the UPS is
 * assumed ideal so the chip never loses power during transfers. The
 * switch keeps the solar/grid energy ledgers the evaluation reports.
 */

#ifndef SOLARCORE_POWER_ATS_HPP
#define SOLARCORE_POWER_ATS_HPP

namespace solarcore::obs {
class TraceBuffer;
} // namespace solarcore::obs

namespace solarcore::power {

/** Which source currently powers the load. */
enum class PowerSource { Solar, Grid };

/** Automatic transfer switch with hysteresis and energy ledgers. */
class TransferSwitch
{
  public:
    /**
     * @param threshold_w  power-transfer threshold: the solar path must
     *                     be able to deliver at least this much
     * @param hysteresis_w extra margin required to switch back to solar
     * @param switch_back_delay_sec how long the solar supply must stay
     *                     above threshold+hysteresis before the switch
     *                     re-engages it (ATS stabilization time);
     *                     flickery skies pay this repeatedly
     */
    explicit TransferSwitch(double threshold_w = 25.0,
                            double hysteresis_w = 2.0,
                            double switch_back_delay_sec = 300.0);

    PowerSource source() const { return source_; }
    bool onSolar() const { return source_ == PowerSource::Solar; }
    double thresholdW() const { return thresholdW_; }

    /**
     * Update the switch given the currently available solar power
     * (typically the panel MPP) and the elapsed time since the last
     * update. Returns the selected source.
     */
    PowerSource update(double available_solar_w, double dt_seconds);

    /** Force a source (used by non-tracking baselines). */
    void force(PowerSource src);

    /**
     * Attach a trace sink (nullptr detaches): every switchover emits
     * an AtsTransfer event stamped with the sink's current simulated
     * time. Borrowed pointer; must outlive the switch or be detached.
     */
    void setTrace(obs::TraceBuffer *trace) { trace_ = trace; }

    /** Account @p watts drawn for @p seconds from the active source. */
    void accountEnergy(double watts, double seconds);

    double solarEnergyWh() const { return solarWh_; }
    double gridEnergyWh() const { return gridWh_; }

    /** Seconds spent on each source so far. */
    double solarSeconds() const { return solarSec_; }
    double gridSeconds() const { return gridSec_; }

    /** Number of source transfers performed. */
    int transferCount() const { return transfers_; }

  private:
    /** Emit an AtsTransfer trace event (trace_ checked by caller). */
    void traceTransfer(double available_solar_w);

    obs::TraceBuffer *trace_ = nullptr;
    double thresholdW_;
    double hysteresisW_;
    double switchBackDelaySec_;
    double stableAboveSec_ = 0.0;
    PowerSource source_ = PowerSource::Grid;
    double solarWh_ = 0.0;
    double gridWh_ = 0.0;
    double solarSec_ = 0.0;
    double gridSec_ = 0.0;
    int transfers_ = 0;
};

} // namespace solarcore::power

#endif // SOLARCORE_POWER_ATS_HPP
