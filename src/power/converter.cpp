#include "converter.hpp"

#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::power {

DcDcConverter::DcDcConverter(double k_min, double k_max, double efficiency)
    : kMin_(k_min), kMax_(k_max), efficiency_(efficiency)
{
    SC_ASSERT(k_min > 0.0 && k_max > k_min,
              "DcDcConverter: bad ratio range");
    SC_ASSERT(efficiency > 0.0 && efficiency <= 1.0,
              "DcDcConverter: efficiency out of (0, 1]");
    k_ = clamp(1.0, kMin_, kMax_);
}

void
DcDcConverter::setRatio(double k)
{
    k_ = clamp(k, kMin_, kMax_);
}

double
DcDcConverter::adjustRatio(double delta)
{
    setRatio(k_ + delta);
    return k_;
}

} // namespace solarcore::power
