/**
 * @file
 * Quasi-static solver for the PV-panel / DC-DC-converter / processor
 * network (paper Figure 5 and Table 1).
 *
 * The multi-core chip behind its VRMs is modelled as the load line
 * I = V / R_load with R_load = V_nom^2 / P_demand: raising the chip's
 * DVFS levels lowers R_load, moving the operating point exactly as the
 * paper's Table 1 describes. The solver finds the intersection of that
 * load line (reflected through the converter) with the panel's I-V
 * characteristic, and can also solve for the transfer ratio that pins
 * the rail at its nominal voltage.
 */

#ifndef SOLARCORE_POWER_OPERATING_POINT_HPP
#define SOLARCORE_POWER_OPERATING_POINT_HPP

#include "power/converter.hpp"
#include "pv/module.hpp"
#include "pv/pv_kernel.hpp"

namespace solarcore::power {

/** The solved electrical state of the whole network. */
struct NetworkState
{
    pv::OperatingPoint panel; //!< PV-side voltage/current
    pv::OperatingPoint load;  //!< rail-side voltage/current
    bool valid = false;       //!< false if the network has no solution

    double panelPower() const { return panel.power(); }
    double loadPower() const { return load.power(); }
};

/**
 * Solve the network for a given converter ratio and load resistance.
 *
 * Monotonicity of the panel I-V curve makes the intersection unique;
 * bisection on the rail voltage is globally convergent.
 *
 * @param source   panel characteristic at the current environment
 * @param conv     converter (its current ratio is used)
 * @param load_ohm chip load-line resistance at the rail
 */
NetworkState solveNetwork(const pv::IvSource &source,
                          const DcDcConverter &conv, double load_ohm);

/**
 * Find the transfer ratio that holds the rail at @p v_rail while the
 * chip demands @p demand_w, staying on the stable (right-of-MPP) branch
 * of the panel curve.
 *
 * Returns a NetworkState with valid=false when the demand exceeds what
 * the panel can deliver (the rail would collapse); the caller then
 * must shed load or fail over to the grid. On success the converter's
 * ratio is updated in place.
 */
NetworkState pinRailVoltage(const pv::IvSource &source, DcDcConverter &conv,
                            double v_rail, double demand_w);

/**
 * Fast-path overload for a PreparedArray whose environment has already
 * been set: the MPP feasibility check reads the cached (bitwise
 * legacy-identical) MPP and the stable-branch solve runs a warm
 * analytic Newton instead of findMpp + a 40-step bisect per call. The
 * controller routes here when a batch kernel is selected; the IvSource
 * overload above remains the scalar parity oracle.
 */
NetworkState pinRailVoltage(const pv::PreparedArray &array,
                            DcDcConverter &conv, double v_rail,
                            double demand_w);

/** Load-line resistance presented by a chip demanding @p demand_w. */
double loadResistance(double v_rail, double demand_w);

} // namespace solarcore::power

#endif // SOLARCORE_POWER_OPERATING_POINT_HPP
