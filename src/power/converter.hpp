/**
 * @file
 * Tunable power-conservative matching network (paper Sections 2.3 and
 * 4.1): a PWM-style DC/DC converter described by its transfer ratio k,
 * with V_in = k * V_out and I_out = k * I_in (lossless by default; an
 * efficiency factor can model conversion loss on the output side).
 */

#ifndef SOLARCORE_POWER_CONVERTER_HPP
#define SOLARCORE_POWER_CONVERTER_HPP

namespace solarcore::power {

/** A transfer-ratio DC/DC converter. */
class DcDcConverter
{
  public:
    /**
     * @param k_min      lowest usable transfer ratio
     * @param k_max      highest usable transfer ratio
     * @param efficiency output power / input power, (0, 1]
     */
    DcDcConverter(double k_min = 0.5, double k_max = 8.0,
                  double efficiency = 1.0);

    double ratio() const { return k_; }

    /** Set the transfer ratio, clamped into [kMin, kMax]. */
    void setRatio(double k);

    /** Nudge the ratio by @p delta (clamped); returns the new ratio. */
    double adjustRatio(double delta);

    double kMin() const { return kMin_; }
    double kMax() const { return kMax_; }
    double efficiency() const { return efficiency_; }

    /** Input-side (panel) voltage for an output voltage. */
    double inputVoltage(double v_out) const { return k_ * v_out; }

    /** Output-side current for an input current, with loss applied. */
    double outputCurrent(double i_in) const
    {
        return k_ * i_in * efficiency_;
    }

  private:
    double kMin_;
    double kMax_;
    double efficiency_;
    double k_ = 1.0;
};

} // namespace solarcore::power

#endif // SOLARCORE_POWER_CONVERTER_HPP
