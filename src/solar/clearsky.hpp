/**
 * @file
 * Clear-sky global horizontal irradiance via the Haurwitz model,
 * GHI = 1098 * cos(Z) * exp(-0.057 / cos(Z)), optionally scaled by a
 * per-site clearness factor (altitude / aerosol proxy). This anchors
 * the synthetic traces that substitute for the paper's measured MIDC
 * recordings (see DESIGN.md section 3).
 */

#ifndef SOLARCORE_SOLAR_CLEARSKY_HPP
#define SOLARCORE_SOLAR_CLEARSKY_HPP

namespace solarcore::solar {

/**
 * Clear-sky GHI [W/m^2] for a given sine of solar elevation.
 *
 * @param sin_elevation sin of the solar elevation angle; values <= 0
 *                      (sun below horizon) yield 0
 * @param site_factor   multiplicative clearness factor (1.0 = Haurwitz)
 */
double clearSkyGhi(double sin_elevation, double site_factor = 1.0);

/**
 * Clear-sky GHI for a site latitude / day / solar hour, convenience
 * wrapper over the geometry module.
 */
double clearSkyGhiAt(double latitude_deg, int day_of_year,
                     double solar_hour, double site_factor = 1.0);

} // namespace solarcore::solar

#endif // SOLARCORE_SOLAR_CLEARSKY_HPP
