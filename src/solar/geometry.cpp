#include "geometry.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace solarcore::solar {

int
dayOfYear(int month, int day)
{
    static const int days_before[12] = {0,   31,  59,  90,  120, 151,
                                        181, 212, 243, 273, 304, 334};
    SC_ASSERT(month >= 1 && month <= 12, "dayOfYear: bad month ", month);
    SC_ASSERT(day >= 1 && day <= 31, "dayOfYear: bad day ", day);
    return days_before[month - 1] + day;
}

double
declination(int day_of_year)
{
    const double two_pi = 6.283185307179586;
    return radians(23.45) *
        std::sin(two_pi * (284.0 + day_of_year) / 365.0);
}

double
hourAngle(double solar_hour)
{
    return radians(15.0 * (solar_hour - 12.0));
}

double
sinElevation(double latitude_deg, int day_of_year, double solar_hour)
{
    const double lat = radians(latitude_deg);
    const double dec = declination(day_of_year);
    const double h = hourAngle(solar_hour);
    return std::sin(lat) * std::sin(dec) +
        std::cos(lat) * std::cos(dec) * std::cos(h);
}

double
daylightHours(double latitude_deg, int day_of_year)
{
    const double lat = radians(latitude_deg);
    const double dec = declination(day_of_year);
    const double cos_sunset = -std::tan(lat) * std::tan(dec);
    if (cos_sunset >= 1.0)
        return 0.0; // polar night
    if (cos_sunset <= -1.0)
        return 24.0; // midnight sun
    return 2.0 * degrees(std::acos(cos_sunset)) / 15.0;
}

double
sunriseHour(double latitude_deg, int day_of_year)
{
    return 12.0 - 0.5 * daylightHours(latitude_deg, day_of_year);
}

double
sunsetHour(double latitude_deg, int day_of_year)
{
    return 12.0 + 0.5 * daylightHours(latitude_deg, day_of_year);
}

} // namespace solarcore::solar
