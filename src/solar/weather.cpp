#include "weather.hpp"

#include <cmath>

#include "util/math.hpp"

namespace solarcore::solar {

CloudModel::CloudModel(const WeatherParams &params, Rng rng)
    : params_(params), rng_(rng)
{
    // Start in the most likely regime with its target transmittance so
    // short traces are not biased by a transient.
    regime_ = CloudRegime::Clear;
    double best = params_.clearFrac;
    if (params_.partlyFrac > best) {
        regime_ = CloudRegime::Partly;
        best = params_.partlyFrac;
    }
    if (params_.overcastFrac > best)
        regime_ = CloudRegime::Overcast;
    value_ = regimeTarget(regime_);
}

double
CloudModel::regimeFraction(CloudRegime r) const
{
    switch (r) {
      case CloudRegime::Clear:    return params_.clearFrac;
      case CloudRegime::Partly:   return params_.partlyFrac;
      case CloudRegime::Overcast: return params_.overcastFrac;
    }
    return 0.0;
}

double
CloudModel::regimeDwell(CloudRegime r) const
{
    // Mean dwell [minutes]: a resample event every tau minutes leaves
    // regime r with probability (1 - f_r), so prevalent regimes
    // naturally persist. Gustiness shortens the resample interval.
    const double tau = 28.0 / (0.5 + 1.5 * params_.gustiness);
    const double leave = std::max(0.02, 1.0 - regimeFraction(r));
    return tau / leave;
}

double
CloudModel::regimeTarget(CloudRegime r) const
{
    switch (r) {
      case CloudRegime::Clear:    return 0.98;
      case CloudRegime::Partly:   return 0.62;
      case CloudRegime::Overcast: return 0.22;
    }
    return 0.5;
}

void
CloudModel::maybeSwitchRegime(double dt_minutes)
{
    // Resample the regime from the configured long-run mix at a
    // gustiness-scaled rate. Because the resample target is the mix
    // itself (and may re-select the current regime), the chain's
    // stationary distribution equals the configured fractions exactly,
    // and prevalent regimes get proportionally longer dwells.
    const double tau = 28.0 / (0.5 + 1.5 * params_.gustiness);
    const double p_resample = clamp(dt_minutes / tau, 0.0, 1.0);
    if (!rng_.bernoulli(p_resample))
        return;

    const double total = params_.clearFrac + params_.partlyFrac +
        params_.overcastFrac;
    if (total <= 0.0)
        return;
    const double pick = rng_.uniform(0.0, total);
    if (pick <= params_.clearFrac)
        regime_ = CloudRegime::Clear;
    else if (pick <= params_.clearFrac + params_.partlyFrac)
        regime_ = CloudRegime::Partly;
    else
        regime_ = CloudRegime::Overcast;
}

void
CloudModel::maybeStartShadow(double dt_minutes)
{
    if (shadowLeft_ > 0.0 || regime_ != CloudRegime::Partly)
        return;
    // Passing cumulus shadows: frequent when gusty.
    const double rate_per_min = 0.05 * (0.3 + params_.gustiness);
    if (rng_.bernoulli(clamp(rate_per_min * dt_minutes, 0.0, 1.0))) {
        shadowLeft_ = rng_.uniform(1.0, 4.5);
        shadowDepth_ = rng_.uniform(0.30, 0.70);
    }
}

double
CloudModel::step(double dt_minutes)
{
    maybeSwitchRegime(dt_minutes);
    maybeStartShadow(dt_minutes);

    // Mean-reverting AR(1) toward the regime target.
    double tau = 0.0;     // reversion time constant [minutes]
    double sigma = 0.0;   // diffusion per sqrt(minute)
    switch (regime_) {
      case CloudRegime::Clear:
        tau = 10.0;
        sigma = 0.004 + 0.01 * params_.gustiness;
        break;
      case CloudRegime::Partly:
        tau = 4.0;
        sigma = 0.05 + 0.13 * params_.gustiness;
        break;
      case CloudRegime::Overcast:
        tau = 15.0;
        sigma = 0.02 + 0.03 * params_.gustiness;
        break;
    }
    const double pull = clamp(dt_minutes / tau, 0.0, 1.0);
    value_ += (regimeTarget(regime_) - value_) * pull;
    value_ += sigma * std::sqrt(dt_minutes) * rng_.gaussian();
    value_ = clamp(value_, 0.05, 1.0);

    double out = value_;
    if (shadowLeft_ > 0.0) {
        out *= shadowDepth_;
        shadowLeft_ -= dt_minutes;
    }
    return clamp(out, 0.02, 1.0);
}

} // namespace solarcore::solar
