/**
 * @file
 * Solar position geometry: declination, hour angle and elevation for a
 * site latitude, day of year and local solar time. Feeds the clear-sky
 * irradiance model that anchors the synthetic MIDC-style traces.
 */

#ifndef SOLARCORE_SOLAR_GEOMETRY_HPP
#define SOLARCORE_SOLAR_GEOMETRY_HPP

namespace solarcore::solar {

/** Degrees-to-radians. */
constexpr double
radians(double degrees)
{
    return degrees * 3.14159265358979323846 / 180.0;
}

/** Radians-to-degrees. */
constexpr double
degrees(double rad)
{
    return rad * 180.0 / 3.14159265358979323846;
}

/**
 * Day of year (1..365) for a month/day pair in a non-leap year.
 *
 * @param month 1..12
 * @param day   1..31
 */
int dayOfYear(int month, int day);

/**
 * Solar declination angle [radians] via the Cooper formula
 * delta = 23.45 deg * sin(2 pi (284 + N) / 365).
 */
double declination(int day_of_year);

/** Hour angle [radians] for local solar time in hours (12.0 = noon). */
double hourAngle(double solar_hour);

/**
 * Sine of the solar elevation angle for a site.
 *
 * @param latitude_deg site latitude [degrees, +N]
 * @param day_of_year  1..365
 * @param solar_hour   local solar time [hours]
 * @return sin(elevation); negative when the sun is below the horizon
 */
double sinElevation(double latitude_deg, int day_of_year, double solar_hour);

/** Daylight duration [hours] between sunrise and sunset. */
double daylightHours(double latitude_deg, int day_of_year);

/** Local solar time of sunrise [hours]; 12.0 under polar night. */
double sunriseHour(double latitude_deg, int day_of_year);

/** Local solar time of sunset [hours]; 12.0 under polar night. */
double sunsetHour(double latitude_deg, int day_of_year);

} // namespace solarcore::solar

#endif // SOLARCORE_SOLAR_GEOMETRY_HPP
