#include "midc.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <sstream>
#include <vector>

namespace solarcore::solar {

namespace {

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ls(line);
    while (std::getline(ls, cell, ','))
        cells.push_back(cell);
    return cells;
}

std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

bool
containsAny(const std::string &hay,
            std::initializer_list<const char *> needles)
{
    for (const char *n : needles) {
        if (hay.find(n) != std::string::npos)
            return true;
    }
    return false;
}

/**
 * Parse a numeric cell strictly: surrounding whitespace is fine, but
 * trailing garbage ("12.3abc") and non-finite spellings ("nan", "inf"
 * -- which std::stod would happily accept) are rejected, so a corrupt
 * export can never smuggle a NaN into the trace.
 */
bool
parseCell(const std::string &cell, double &out)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(cell, &used);
        while (used < cell.size() &&
               std::isspace(static_cast<unsigned char>(cell[used])))
            ++used;
        if (used != cell.size() || !std::isfinite(v))
            return false;
        out = v;
        return true;
    } catch (...) {
        return false;
    }
}

/** Parse "HH:MM" (or "H:MM") into minutes since midnight; -1 on error. */
double
parseClock(const std::string &cell)
{
    const auto colon = cell.find(':');
    if (colon == std::string::npos)
        return -1.0;
    try {
        const int h = std::stoi(cell.substr(0, colon));
        const int m = std::stoi(cell.substr(colon + 1));
        if (h < 0 || h > 23 || m < 0 || m > 59)
            return -1.0;
        return h * 60.0 + m;
    } catch (...) {
        return -1.0;
    }
}

} // namespace

MidcParseResult
parseMidcCsv(std::istream &is, bool clip_to_window)
{
    MidcParseResult res;

    std::string header_line;
    if (!std::getline(is, header_line)) {
        res.error = "empty input";
        return res;
    }
    const auto headers = splitCsvLine(header_line);

    int time_col = -1;
    int ghi_col = -1;
    int temp_col = -1;
    for (std::size_t i = 0; i < headers.size(); ++i) {
        const std::string h = lowered(headers[i]);
        if (time_col < 0 &&
            containsAny(h, {"mst", "lst", "time", "hh:mm"})) {
            time_col = static_cast<int>(i);
        } else if (ghi_col < 0 &&
                   containsAny(h, {"global horizontal", "ghi",
                                   "global [w", "global cmp"})) {
            ghi_col = static_cast<int>(i);
            res.irradianceColumn = headers[i];
        } else if (temp_col < 0 &&
                   containsAny(h, {"temp", "deg c", "air temperature"})) {
            temp_col = static_cast<int>(i);
            res.temperatureColumn = headers[i];
        }
    }
    if (time_col < 0 || ghi_col < 0) {
        res.error = "could not locate time and irradiance columns";
        return res;
    }

    std::vector<TracePoint> points;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const auto cells = splitCsvLine(line);
        const auto need = static_cast<std::size_t>(
            std::max({time_col, ghi_col, temp_col}));
        if (cells.size() <= need) {
            ++res.rowsSkipped;
            continue;
        }
        const double minute =
            parseClock(cells[static_cast<std::size_t>(time_col)]);
        double ghi = 0.0;
        double temp = 20.0;
        if (!parseCell(cells[static_cast<std::size_t>(ghi_col)], ghi) ||
            (temp_col >= 0 &&
             !parseCell(cells[static_cast<std::size_t>(temp_col)],
                        temp))) {
            ++res.rowsSkipped;
            continue;
        }
        if (minute < 0.0) {
            ++res.rowsSkipped;
            continue;
        }
        if (clip_to_window &&
            (minute < kDayStartMinute || minute > kDayEndMinute)) {
            ++res.rowsSkipped;
            continue;
        }
        // Clamp to the physically plausible envelope: night-time sensor
        // offsets dip slightly negative, and spikes above the
        // terrestrial ceiling (~1.5 kW/m^2 with cloud-edge focusing)
        // are instrument glitches, not sunshine. Same for temperature.
        TracePoint p;
        p.minuteOfDay = minute;
        p.irradiance = std::clamp(ghi, 0.0, kMaxPlausibleIrradiance);
        p.ambientC = std::clamp(temp, kMinPlausibleAmbientC,
                                kMaxPlausibleAmbientC);
        // Enforce ascending order: drop out-of-order rows.
        if (!points.empty() && minute <= points.back().minuteOfDay) {
            ++res.rowsSkipped;
            continue;
        }
        points.push_back(p);
        ++res.rowsParsed;
    }

    if (points.size() < 2) {
        res.error = "fewer than two usable rows";
        return res;
    }
    const double dt = points[1].minuteOfDay - points[0].minuteOfDay;
    res.trace = SolarTrace(std::move(points), dt);
    res.ok = true;
    return res;
}

} // namespace solarcore::solar
