#include "clearsky.hpp"

#include <cmath>

#include "solar/geometry.hpp"

namespace solarcore::solar {

double
clearSkyGhi(double sin_elevation, double site_factor)
{
    if (sin_elevation <= 0.0)
        return 0.0;
    // Haurwitz (1945): GHI = 1098 cos(Z) exp(-0.057 / cos(Z)),
    // with cos(Z) = sin(elevation).
    const double cos_z = sin_elevation;
    return site_factor * 1098.0 * cos_z * std::exp(-0.057 / cos_z);
}

double
clearSkyGhiAt(double latitude_deg, int day_of_year, double solar_hour,
              double site_factor)
{
    return clearSkyGhi(sinElevation(latitude_deg, day_of_year, solar_hour),
                       site_factor);
}

} // namespace solarcore::solar
