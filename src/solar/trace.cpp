#include "trace.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "solar/clearsky.hpp"
#include "solar/geometry.hpp"
#include "solar/weather.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::solar {

SolarTrace::SolarTrace(std::vector<TracePoint> points, double dt_minutes)
    : points_(std::move(points)), dtMinutes_(dt_minutes)
{
    SC_ASSERT(dtMinutes_ > 0.0, "SolarTrace: non-positive dt");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        SC_ASSERT(points_[i].minuteOfDay > points_[i - 1].minuteOfDay,
                  "SolarTrace: samples must be ascending");
    }
}

double
SolarTrace::startMinute() const
{
    return points_.empty() ? 0.0 : points_.front().minuteOfDay;
}

double
SolarTrace::endMinute() const
{
    return points_.empty() ? 0.0 : points_.back().minuteOfDay;
}

namespace {

double
interpolate(const std::vector<TracePoint> &pts, double minute,
            double TracePoint::*field)
{
    if (pts.empty())
        return 0.0;
    if (minute <= pts.front().minuteOfDay)
        return pts.front().*field;
    if (minute >= pts.back().minuteOfDay)
        return pts.back().*field;

    const auto it = std::lower_bound(
        pts.begin(), pts.end(), minute,
        [](const TracePoint &p, double m) { return p.minuteOfDay < m; });
    const auto hi = it;
    const auto lo = it - 1;
    const double t = (minute - lo->minuteOfDay) /
        (hi->minuteOfDay - lo->minuteOfDay);
    return lerp((*lo).*field, (*hi).*field, t);
}

} // namespace

double
SolarTrace::irradianceAt(double minute) const
{
    return interpolate(points_, minute, &TracePoint::irradiance);
}

double
SolarTrace::ambientAt(double minute) const
{
    return interpolate(points_, minute, &TracePoint::ambientC);
}

double
SolarTrace::insolationKwhPerM2() const
{
    if (points_.size() < 2)
        return 0.0;
    double wh = 0.0; // trapezoid integration in watt-minutes
    for (std::size_t i = 1; i < points_.size(); ++i) {
        const double dt = points_[i].minuteOfDay - points_[i - 1].minuteOfDay;
        wh += 0.5 * (points_[i].irradiance + points_[i - 1].irradiance) * dt;
    }
    return wh / 60.0 / 1000.0;
}

double
SolarTrace::peakIrradiance() const
{
    double peak = 0.0;
    for (const auto &p : points_)
        peak = std::max(peak, p.irradiance);
    return peak;
}

void
SolarTrace::saveCsv(std::ostream &os) const
{
    os << std::setprecision(12);
    os << "minute,irradiance_wm2,ambient_c\n";
    for (const auto &p : points_) {
        os << p.minuteOfDay << ',' << p.irradiance << ',' << p.ambientC
           << '\n';
    }
}

SolarTrace
SolarTrace::loadCsv(std::istream &is)
{
    std::vector<TracePoint> points;
    std::string line;
    std::getline(is, line); // header
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        TracePoint p;
        char c1 = 0;
        char c2 = 0;
        if (!(ls >> p.minuteOfDay >> c1 >> p.irradiance >> c2 >> p.ambientC)
            || c1 != ',' || c2 != ',') {
            SC_FATAL("SolarTrace::loadCsv: malformed line '", line, "'");
        }
        points.push_back(p);
    }
    const double dt = points.size() >= 2
        ? points[1].minuteOfDay - points[0].minuteOfDay
        : 1.0;
    return SolarTrace(std::move(points), dt);
}

namespace {

/**
 * Diurnal ambient temperature: sinusoidal ramp from tMin before dawn
 * to tMax at ~14:30, damped on heavily clouded minutes.
 */
double
ambientTemperature(const WeatherParams &wx, double hour, double transmittance)
{
    const double phase = clamp((hour - 5.0) / 19.0, 0.0, 1.0);
    double diurnal = std::sin(phase * 3.14159265358979323846);
    // Peak alignment: sin peaks at hour 14.5 with the 5..24 span.
    const double cloud_damp = 0.7 + 0.3 * transmittance;
    return wx.tMinC + (wx.tMaxC - wx.tMinC) * diurnal * cloud_damp;
}

} // namespace

namespace detail {

/** Shared trace-construction kernel of the two public generators. */
SolarTrace
generateTraceImpl(double latitude_deg, int doy, const WeatherParams &wx,
                  double clearness, Rng &stream, double dt_minutes)
{
    SC_ASSERT(dt_minutes > 0.0 && dt_minutes <= 10.0,
              "generateTrace: dt out of range");
    CloudModel clouds(wx, stream.fork(1));
    Rng temp_noise = stream.fork(2);

    // Warm the cloud process up so 7:30 starts in a mixed state.
    for (int i = 0; i < 120; ++i)
        clouds.step(dt_minutes);

    std::vector<TracePoint> points;
    const int n = static_cast<int>(
        std::floor((kDayEndMinute - kDayStartMinute) / dt_minutes)) + 1;
    points.reserve(static_cast<std::size_t>(n));

    for (int i = 0; i < n; ++i) {
        const double minute = kDayStartMinute + i * dt_minutes;
        const double hour = minute / 60.0;
        const double trans = clouds.step(dt_minutes);
        const double ghi = clearSkyGhiAt(latitude_deg, doy, hour, clearness);

        TracePoint p;
        p.minuteOfDay = minute;
        p.irradiance = std::max(0.0, ghi * trans);
        p.ambientC = ambientTemperature(wx, hour, trans) +
            temp_noise.gaussian(0.0, 0.3);
        points.push_back(p);
    }
    return SolarTrace(std::move(points), dt_minutes);
}

} // namespace detail

SolarTrace
generateDayTrace(SiteId site, Month month, std::uint64_t seed,
                 double dt_minutes)
{
    const Site &info = siteInfo(site);
    const WeatherParams &wx = weatherParams(site, month);
    const int doy = dayOfYear(monthNumber(month), 15);

    // Independent deterministic stream per (seed, site, month).
    Rng root(seed);
    Rng stream = root.fork(
        (static_cast<std::uint64_t>(site) << 8) ^
        (static_cast<std::uint64_t>(month) << 4) ^ 0xa5u);
    return detail::generateTraceImpl(info.latitudeDeg, doy, wx,
                                     info.clearnessFactor, stream,
                                     dt_minutes);
}

SolarTrace
generateCustomTrace(double latitude_deg, int day_of_year,
                    const WeatherParams &weather, double clearness_factor,
                    std::uint64_t seed, double dt_minutes)
{
    SC_ASSERT(day_of_year >= 1 && day_of_year <= 365,
              "generateCustomTrace: bad day of year");
    Rng root(seed);
    Rng stream = root.fork(0xc05717a1u);
    return detail::generateTraceImpl(latitude_deg, day_of_year, weather,
                                     clearness_factor, stream,
                                     dt_minutes);
}

} // namespace solarcore::solar
