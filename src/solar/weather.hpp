/**
 * @file
 * Stochastic cloud-transmittance model.
 *
 * A three-regime Markov chain (clear / broken clouds / overcast) with
 * per-regime mean-reverting transmittance noise and transient cloud
 * shadow dips in the broken regime. Regime dwell times shrink with the
 * site-month "gustiness" knob, which is how volatile months (e.g. NC
 * April) produce the ragged irradiance the paper's Table 7 reflects.
 */

#ifndef SOLARCORE_SOLAR_WEATHER_HPP
#define SOLARCORE_SOLAR_WEATHER_HPP

#include "solar/sites.hpp"
#include "util/random.hpp"

namespace solarcore::solar {

/** Sky condition regimes. */
enum class CloudRegime { Clear = 0, Partly = 1, Overcast = 2 };

/**
 * Evolves a cloud transmittance multiplier in (0, 1] minute by minute.
 *
 * Transmittance multiplies clear-sky GHI to give the actual plane-of-
 * array irradiance. The process is a regime-switching AR(1); all draws
 * come from the owned Rng so traces are reproducible per seed.
 */
class CloudModel
{
  public:
    CloudModel(const WeatherParams &params, Rng rng);

    /**
     * Advance @p dt_minutes and return the new transmittance.
     * @param dt_minutes step length; the model is calibrated for steps
     *                   in the 0.25..5 minute range
     */
    double step(double dt_minutes);

    /** Current regime (after the last step). */
    CloudRegime regime() const { return regime_; }

    /** Current transmittance without advancing. */
    double transmittance() const { return value_; }

  private:
    /** Long-run fraction for a regime from the parameter mix. */
    double regimeFraction(CloudRegime r) const;

    /** Mean dwell time [minutes] for a regime, gustiness-scaled. */
    double regimeDwell(CloudRegime r) const;

    /** Mean transmittance the AR(1) reverts to inside a regime. */
    double regimeTarget(CloudRegime r) const;

    void maybeSwitchRegime(double dt_minutes);
    void maybeStartShadow(double dt_minutes);

    WeatherParams params_;
    Rng rng_;
    CloudRegime regime_ = CloudRegime::Clear;
    double value_ = 0.98;     //!< smoothed AR(1) state
    double shadowLeft_ = 0.0; //!< remaining minutes of a shadow dip
    double shadowDepth_ = 1.0;//!< multiplier applied while shadowed
};

} // namespace solarcore::solar

#endif // SOLARCORE_SOLAR_WEATHER_HPP
