/**
 * @file
 * The four evaluated measurement sites (paper Table 2) and the
 * per-site, per-month weather statistics that drive the synthetic
 * trace generator.
 *
 * The paper replays NREL MIDC 2009 recordings from four stations with
 * decreasing solar resource potential: PFCI (Phoenix AZ, excellent),
 * BMS (Golden CO, good), ECSU (Elizabeth City NC, moderate) and ORNL
 * (Oak Ridge TN, low). We encode each station's latitude plus a
 * calibrated cloud-regime mix per month so the generated traces match
 * the paper's qualitative record: AZ regular in January and irregular
 * (monsoon) in July, NC most volatile in April and calmest in July,
 * and the Table 2 ordering of mean daily insolation.
 */

#ifndef SOLARCORE_SOLAR_SITES_HPP
#define SOLARCORE_SOLAR_SITES_HPP

#include <array>
#include <string>
#include <vector>

namespace solarcore::solar {

/** The four MIDC stations of paper Table 2. */
enum class SiteId { AZ = 0, CO = 1, NC = 2, TN = 3 };

/** The four evaluated months (middle of each season, 2009). */
enum class Month { Jan = 0, Apr = 1, Jul = 2, Oct = 3 };

inline constexpr int kNumSites = 4;
inline constexpr int kNumMonths = 4;

/** All site values, in paper order. */
std::array<SiteId, kNumSites> allSites();

/** All month values, in paper order. */
std::array<Month, kNumMonths> allMonths();

/** Short label, e.g. "AZ". */
const char *siteName(SiteId site);

/** Short label, e.g. "Jan". */
const char *monthName(Month month);

/** Calendar month number (1..12) of a Month value. */
int monthNumber(Month month);

/** Cloud regime mixture and temperature span for one site-month. */
struct WeatherParams
{
    double clearFrac = 0.7;    //!< long-run fraction of clear minutes
    double partlyFrac = 0.2;   //!< fraction of broken-cloud minutes
    double overcastFrac = 0.1; //!< fraction of overcast minutes
    double gustiness = 0.5;    //!< 0..1 cloud-speed / volatility knob
    double tMinC = 10.0;       //!< early-morning ambient temperature [C]
    double tMaxC = 25.0;       //!< mid-afternoon ambient temperature [C]
};

/** Static description of one MIDC station. */
struct Site
{
    SiteId id;
    std::string station;      //!< MIDC station code, e.g. "PFCI"
    std::string location;     //!< city/state, e.g. "Phoenix, AZ"
    double latitudeDeg;       //!< site latitude [deg N]
    double clearnessFactor;   //!< clear-sky scaling (altitude/aerosol)
    std::string potential;    //!< paper's qualitative resource class
    double paperKwhPerM2Day;  //!< Table 2 nominal resource [kWh/m^2/day]
};

/** Station record for @p site (Table 2). */
const Site &siteInfo(SiteId site);

/** Calibrated weather statistics for a site-month. */
const WeatherParams &weatherParams(SiteId site, Month month);

/**
 * Weather statistics for an arbitrary day of year, linearly blended
 * between the four calibrated anchor months (mid-Jan/Apr/Jul/Oct,
 * wrapping across New Year). Enables whole-year studies beyond the
 * paper's four evaluation days.
 */
WeatherParams weatherParamsForDay(SiteId site, int day_of_year);

/** All 16 (site, month) pairs in paper order (site-major). */
std::vector<std::pair<SiteId, Month>> allSiteMonths();

} // namespace solarcore::solar

#endif // SOLARCORE_SOLAR_SITES_HPP
