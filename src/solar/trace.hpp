/**
 * @file
 * Day-long irradiance/temperature traces and their generator.
 *
 * A SolarTrace is the synthetic stand-in for one MIDC daytime record
 * (paper Section 5): per-minute plane-of-array irradiance and ambient
 * temperature between 7:30 and 17:30 local time. Generation composes
 * the clear-sky model with the stochastic cloud model and a diurnal
 * temperature curve, all seeded deterministically per site/month/day.
 */

#ifndef SOLARCORE_SOLAR_TRACE_HPP
#define SOLARCORE_SOLAR_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "solar/sites.hpp"

namespace solarcore::solar {

/** One sample of a daytime trace. */
struct TracePoint
{
    double minuteOfDay = 0.0; //!< minutes since local midnight
    double irradiance = 0.0;  //!< plane-of-array irradiance [W/m^2]
    double ambientC = 0.0;    //!< ambient air temperature [C]
};

/** The paper's evaluation window: 7:30 .. 17:30 local time. */
inline constexpr double kDayStartMinute = 7.5 * 60.0;
inline constexpr double kDayEndMinute = 17.5 * 60.0;

/** A uniformly sampled daytime irradiance/temperature record. */
class SolarTrace
{
  public:
    SolarTrace() = default;

    /**
     * @param points     uniformly spaced samples, ascending minuteOfDay
     * @param dt_minutes sample spacing [minutes]
     */
    SolarTrace(std::vector<TracePoint> points, double dt_minutes);

    bool empty() const { return points_.empty(); }
    std::size_t size() const { return points_.size(); }
    double dtMinutes() const { return dtMinutes_; }
    const TracePoint &point(std::size_t i) const { return points_.at(i); }
    const std::vector<TracePoint> &points() const { return points_; }

    double startMinute() const;
    double endMinute() const;

    /** Linear interpolation of irradiance at @p minute (clamped). */
    double irradianceAt(double minute) const;

    /** Linear interpolation of ambient temperature at @p minute. */
    double ambientAt(double minute) const;

    /** Integrated insolation over the record [kWh/m^2]. */
    double insolationKwhPerM2() const;

    /** Peak irradiance over the record [W/m^2]. */
    double peakIrradiance() const;

    /** Write as CSV: minute,irradiance,ambient_c. */
    void saveCsv(std::ostream &os) const;

    /** Parse the CSV format written by saveCsv. */
    static SolarTrace loadCsv(std::istream &is);

  private:
    std::vector<TracePoint> points_;
    double dtMinutes_ = 1.0;
};

/**
 * Generate the daytime trace of one representative day.
 *
 * @param site       MIDC station
 * @param month      evaluated month (day 15 of it)
 * @param seed       deterministic seed; same arguments = same trace
 * @param dt_minutes sample spacing, default 1 minute
 */
SolarTrace generateDayTrace(SiteId site, Month month, std::uint64_t seed,
                            double dt_minutes = 1.0);

/**
 * Generate a daytime trace for an arbitrary location and sky: the
 * building block behind generateDayTrace, exposed so users can study
 * sites and climates beyond the paper's four stations.
 *
 * @param latitude_deg     site latitude [deg N]
 * @param day_of_year      1..365
 * @param weather          cloud-regime mixture and temperature span
 * @param clearness_factor clear-sky scaling (altitude/aerosol proxy)
 * @param seed             deterministic seed
 * @param dt_minutes       sample spacing
 */
SolarTrace generateCustomTrace(double latitude_deg, int day_of_year,
                               const WeatherParams &weather,
                               double clearness_factor, std::uint64_t seed,
                               double dt_minutes = 1.0);

} // namespace solarcore::solar

#endif // SOLARCORE_SOLAR_TRACE_HPP
