#include "sites.hpp"

#include "util/logging.hpp"

namespace solarcore::solar {

std::array<SiteId, kNumSites>
allSites()
{
    return {SiteId::AZ, SiteId::CO, SiteId::NC, SiteId::TN};
}

std::array<Month, kNumMonths>
allMonths()
{
    return {Month::Jan, Month::Apr, Month::Jul, Month::Oct};
}

const char *
siteName(SiteId site)
{
    switch (site) {
      case SiteId::AZ: return "AZ";
      case SiteId::CO: return "CO";
      case SiteId::NC: return "NC";
      case SiteId::TN: return "TN";
    }
    SC_PANIC("siteName: bad site");
    return "?";
}

const char *
monthName(Month month)
{
    switch (month) {
      case Month::Jan: return "Jan";
      case Month::Apr: return "Apr";
      case Month::Jul: return "Jul";
      case Month::Oct: return "Oct";
    }
    SC_PANIC("monthName: bad month");
    return "?";
}

int
monthNumber(Month month)
{
    switch (month) {
      case Month::Jan: return 1;
      case Month::Apr: return 4;
      case Month::Jul: return 7;
      case Month::Oct: return 10;
    }
    SC_PANIC("monthNumber: bad month");
    return 0;
}

namespace {

const Site kSites[kNumSites] = {
    {SiteId::AZ, "PFCI", "Phoenix, AZ", 33.45, 1.00, "Excellent", 6.2},
    {SiteId::CO, "BMS", "Golden, CO", 39.74, 1.02, "Good", 5.5},
    {SiteId::NC, "ECSU", "Elizabeth City, NC", 36.30, 0.95, "Moderate", 4.5},
    {SiteId::TN, "ORNL", "Oak Ridge, TN", 35.93, 0.85, "Low", 3.8},
};

/*
 * Cloud-regime mixes calibrated against the paper's qualitative record:
 *  - AZ Jan is "regular" (Fig 13) and AZ Jul "irregular" monsoon (Fig 14);
 *  - Table 7 tracking errors peak for NC/TN in April and bottom out for
 *    NC in July, so those months get the extreme gustiness values;
 *  - overall cloudiness rises AZ -> CO -> NC -> TN to reproduce the
 *    Table 2 resource ordering.
 * Index: [site][month] with months Jan, Apr, Jul, Oct.
 */
const WeatherParams kWeather[kNumSites][kNumMonths] = {
    // AZ (PFCI)
    {
        {0.93, 0.05, 0.02, 0.25, 7.0, 19.0},  // Jan: regular, clear
        {0.80, 0.15, 0.05, 0.50, 15.0, 29.0}, // Apr
        {0.50, 0.40, 0.10, 0.85, 29.0, 41.0}, // Jul: monsoon, irregular
        {0.80, 0.15, 0.05, 0.40, 18.0, 31.0}, // Oct
    },
    // CO (BMS)
    {
        {0.68, 0.22, 0.10, 0.60, -8.0, 6.0},  // Jan
        {0.60, 0.28, 0.12, 0.60, 1.0, 16.0},  // Apr
        {0.70, 0.24, 0.06, 0.45, 13.0, 30.0}, // Jul
        {0.62, 0.26, 0.12, 0.55, 1.0, 18.0},  // Oct
    },
    // NC (ECSU)
    {
        {0.44, 0.30, 0.26, 0.58, 1.0, 11.0},  // Jan
        {0.30, 0.46, 0.24, 0.95, 9.0, 21.0},  // Apr: most volatile
        {0.52, 0.34, 0.14, 0.25, 22.0, 32.0}, // Jul: calmest
        {0.36, 0.34, 0.30, 0.75, 11.0, 22.0}, // Oct
    },
    // TN (ORNL)
    {
        {0.32, 0.30, 0.38, 0.52, -2.0, 8.0},  // Jan
        {0.28, 0.38, 0.34, 0.85, 8.0, 21.0},  // Apr
        {0.36, 0.36, 0.28, 0.62, 20.0, 32.0}, // Jul
        {0.28, 0.32, 0.40, 0.80, 8.0, 21.0},  // Oct
    },
};

} // namespace

const Site &
siteInfo(SiteId site)
{
    return kSites[static_cast<int>(site)];
}

const WeatherParams &
weatherParams(SiteId site, Month month)
{
    return kWeather[static_cast<int>(site)][static_cast<int>(month)];
}

WeatherParams
weatherParamsForDay(SiteId site, int day_of_year)
{
    SC_ASSERT(day_of_year >= 1 && day_of_year <= 365,
              "weatherParamsForDay: bad day of year");
    // Anchor days: the paper's evaluation days (the 15th of each
    // anchor month).
    static const int anchors[kNumMonths] = {15, 105, 196, 288};

    // Locate the bracketing anchors, wrapping across New Year.
    int lo = kNumMonths - 1;
    for (int i = 0; i < kNumMonths; ++i) {
        if (day_of_year >= anchors[i])
            lo = i;
    }
    const int hi = (lo + 1) % kNumMonths;
    const double lo_day = anchors[lo];
    double hi_day = anchors[hi];
    double d = day_of_year;
    if (hi == 0) { // wrap: Oct anchor -> next Jan anchor
        hi_day += 365.0;
        if (d < lo_day)
            d += 365.0;
    }
    const double t = (d - lo_day) / (hi_day - lo_day);

    const WeatherParams &a =
        weatherParams(site, static_cast<Month>(lo));
    const WeatherParams &b =
        weatherParams(site, static_cast<Month>(hi));
    auto mix = [t](double x, double y) { return x + (y - x) * t; };

    WeatherParams out;
    out.clearFrac = mix(a.clearFrac, b.clearFrac);
    out.partlyFrac = mix(a.partlyFrac, b.partlyFrac);
    out.overcastFrac = mix(a.overcastFrac, b.overcastFrac);
    out.gustiness = mix(a.gustiness, b.gustiness);
    out.tMinC = mix(a.tMinC, b.tMinC);
    out.tMaxC = mix(a.tMaxC, b.tMaxC);
    return out;
}

std::vector<std::pair<SiteId, Month>>
allSiteMonths()
{
    std::vector<std::pair<SiteId, Month>> out;
    out.reserve(kNumSites * kNumMonths);
    for (auto site : allSites())
        for (auto month : allMonths())
            out.emplace_back(site, month);
    return out;
}

} // namespace solarcore::solar
