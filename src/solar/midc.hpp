/**
 * @file
 * MIDC-format ingestion: parse the CSV layout served by NREL's
 * Measurement and Instrumentation Data Center (paper Section 5,
 * reference [18]) into a SolarTrace, so the synthetic generator can be
 * swapped for real recordings when the data is available.
 *
 * The MIDC daily export is a comma-separated table whose first row
 * names the columns, e.g.
 *
 *   DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Temperature [deg C]
 *   01/15/2009,07:30,12.3,2.1
 *
 * Column names vary slightly per station ("Global Horizontal",
 * "GHI", "Air Temperature", ...); the parser locates the time, one
 * irradiance column and one temperature column by keyword, tolerates
 * extra columns, and clips the record to the paper's 7:30..17:30
 * evaluation window.
 */

#ifndef SOLARCORE_SOLAR_MIDC_HPP
#define SOLARCORE_SOLAR_MIDC_HPP

#include <iosfwd>
#include <string>

#include "solar/trace.hpp"

namespace solarcore::solar {

/**
 * Plausibility envelope applied per sample: irradiance clamps into
 * [0, kMaxPlausibleIrradiance] (night-time sensor offsets are slightly
 * negative; cloud-edge focusing tops out near 1.5 kW/m^2), ambient
 * temperature into [kMinPlausibleAmbientC, kMaxPlausibleAmbientC].
 * Non-numeric or non-finite cells skip the whole row instead.
 */
inline constexpr double kMaxPlausibleIrradiance = 1500.0;
inline constexpr double kMinPlausibleAmbientC = -60.0;
inline constexpr double kMaxPlausibleAmbientC = 60.0;

/** Outcome of a MIDC parse. */
struct MidcParseResult
{
    SolarTrace trace;
    int rowsParsed = 0;
    int rowsSkipped = 0;     //!< malformed or out-of-window rows
    std::string irradianceColumn; //!< the header actually matched
    std::string temperatureColumn;
    bool ok = false;
    std::string error;       //!< populated when ok is false
};

/**
 * Parse one day of MIDC-format CSV from @p is.
 *
 * @param clip_to_window keep only samples inside the paper's
 *                       7:30..17:30 evaluation window
 */
MidcParseResult parseMidcCsv(std::istream &is, bool clip_to_window = true);

} // namespace solarcore::solar

#endif // SOLARCORE_SOLAR_MIDC_HPP
