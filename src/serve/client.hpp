/**
 * @file
 * Blocking client for the solarcore_serve socket protocol.
 *
 * A thin synchronous wrapper used by solarcore_query, the serve test
 * battery and the CI smoke job: connect to the daemon's AF_UNIX
 * socket, send PlanQuery frames, await PlanReply frames with a poll
 * timeout. The raw-byte escape hatches (sendBytes / sendFramePayload)
 * exist for the protocol fuzz tests, which need to put torn frames,
 * oversized declared lengths and garbage payloads on the wire --
 * something the typed call() path refuses to produce.
 */

#ifndef SOLARCORE_SERVE_CLIENT_HPP
#define SOLARCORE_SERVE_CLIENT_HPP

#include <deque>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"
#include "util/pipe_channel.hpp"

namespace solarcore::serve {

class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to @p socket_path. @return false on failure. */
    bool connect(const std::string &socket_path);

    bool connected() const { return fd_ >= 0; }

    /** Close the connection (idempotent). */
    void close();

    /**
     * Send @p query and await its reply for up to @p timeout_millis
     * (<= 0 waits indefinitely). @return false on transport failure,
     * timeout or an undecodable reply, with a one-line @p error.
     */
    bool call(const PlanQuery &query, PlanReply &reply,
              int timeout_millis, std::string &error);

    /** Frame @p payload and send it verbatim (fuzz tests). */
    bool sendFramePayload(std::string_view payload);

    /** Send raw bytes with no framing at all (fuzz tests). */
    bool sendBytes(std::string_view bytes);

    /**
     * Await one complete frame for up to @p timeout_millis (<= 0
     * waits indefinitely). @return false on timeout, disconnect or
     * protocol error.
     */
    bool receiveFrame(std::string &frame, int timeout_millis);

  private:
    int fd_ = -1;
    util::FrameReader reader_;
    std::deque<std::string> pending_; //!< drained but unconsumed frames
};

} // namespace solarcore::serve

#endif // SOLARCORE_SERVE_CLIENT_HPP
