#include "protocol.hpp"

#include <charconv>
#include <cmath>
#include <cstring>

#if !defined(_WIN32)
#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#endif

namespace solarcore::serve {
namespace {

/// Packed little helpers. All integers and doubles travel native-endian
/// as raw bytes -- same-machine IPC, and doubles must round-trip bit
/// exactly so cached answers replay identical payloads.
void
appendU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
appendU32(std::string &out, std::uint32_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

void
appendF64(std::string &out, double v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

/**
 * Bounds-checked cursor over an untrusted frame. Every take* checks
 * the remaining length first; nothing here allocates towards a size
 * read from the wire.
 */
struct Reader
{
    const char *cur = nullptr;
    const char *end = nullptr;

    explicit Reader(std::string_view frame)
        : cur(frame.data()), end(frame.data() + frame.size())
    {
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - cur);
    }

    bool takeU8(std::uint8_t &v)
    {
        if (remaining() < sizeof v)
            return false;
        v = static_cast<std::uint8_t>(*cur++);
        return true;
    }

    bool takeU32(std::uint32_t &v)
    {
        if (remaining() < sizeof v)
            return false;
        std::memcpy(&v, cur, sizeof v);
        cur += sizeof v;
        return true;
    }

    bool takeU64(std::uint64_t &v)
    {
        if (remaining() < sizeof v)
            return false;
        std::memcpy(&v, cur, sizeof v);
        cur += sizeof v;
        return true;
    }

    bool takeF64(double &v)
    {
        if (remaining() < sizeof v)
            return false;
        std::memcpy(&v, cur, sizeof v);
        cur += sizeof v;
        return true;
    }

    bool takeBytes(std::string &out, std::size_t n)
    {
        if (remaining() < n)
            return false;
        out.assign(cur, n);
        cur += n;
        return true;
    }
};

/** Shortest round-trip decimal of @p v (cache-key text). */
void
appendNumberText(std::string &out, double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

/**
 * Read an axis list: u32 count followed by fixed-size entries mapped
 * through @p decode, which must range-check the raw value. The count
 * is validated against both kMaxAxisEntries and the bytes actually
 * present before any element is touched.
 */
template <typename Raw, typename Decode, typename Out>
bool
takeAxis(Reader &r, const char *axis, std::vector<Out> &out,
         Decode decode, std::string &error)
{
    std::uint32_t count = 0;
    if (!r.takeU32(count)) {
        error = std::string("truncated ") + axis + " list";
        return false;
    }
    if (count == 0 || count > kMaxAxisEntries) {
        error = std::string(axis) + " count out of range";
        return false;
    }
    if (r.remaining() < static_cast<std::size_t>(count) * sizeof(Raw)) {
        error = std::string("truncated ") + axis + " entries";
        return false;
    }
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Raw raw{};
        if constexpr (sizeof(Raw) == 1) {
            std::uint8_t b = 0;
            r.takeU8(b);
            raw = static_cast<Raw>(b);
        } else {
            std::uint64_t w = 0;
            r.takeU64(w);
            raw = static_cast<Raw>(w);
        }
        Out value{};
        if (!decode(raw, value)) {
            error = std::string("invalid ") + axis + " entry";
            return false;
        }
        out.push_back(value);
    }
    return true;
}

/// Dense 0-based enum ranges on the wire.
constexpr std::uint8_t kSiteCount =
    static_cast<std::uint8_t>(solar::kNumSites);
constexpr std::uint8_t kMonthCount =
    static_cast<std::uint8_t>(solar::kNumMonths);
constexpr std::uint8_t kPolicyCount = 6; // MpptOpt..Battery
constexpr std::uint8_t kWorkloadCount =
    static_cast<std::uint8_t>(workload::kNumWorkloads);

void
appendEcon(std::string &out, const core::GridContext &econ)
{
    appendF64(out, econ.co2KgPerKwh);
    appendF64(out, econ.gridUsdPerKwh);
    appendF64(out, econ.panelUsd);
    appendF64(out, econ.batteryUsd);
    appendF64(out, econ.batteryLifeYears);
}

bool
takeEcon(Reader &r, core::GridContext &econ)
{
    return r.takeF64(econ.co2KgPerKwh) && r.takeF64(econ.gridUsdPerKwh) &&
        r.takeF64(econ.panelUsd) && r.takeF64(econ.batteryUsd) &&
        r.takeF64(econ.batteryLifeYears);
}

void
appendAnswer(std::string &out, const PlanAnswer &a)
{
    appendU32(out, a.unitCount);
    appendU32(out, a.nodesPerUnit);
    appendF64(out, a.nodes);
    appendF64(out, a.mppEnergyWh);
    appendF64(out, a.solarEnergyWh);
    appendF64(out, a.gridEnergyWh);
    appendF64(out, a.chipEnergyWh);
    appendF64(out, a.solarInstructions);
    appendF64(out, a.totalInstructions);
    appendF64(out, a.fleetUtilization);
    appendF64(out, a.greenFraction);
    appendF64(out, a.solarKwhPerDay);
    appendF64(out, a.gridKwhPerDay);
    appendF64(out, a.co2AvoidedKgPerYear);
    appendF64(out, a.savingsUsdPerYear);
    appendF64(out, a.panelPaybackYears);
    appendF64(out, a.batteryAvoidedUsdPerYear);
}

bool
takeAnswer(Reader &r, PlanAnswer &a)
{
    return r.takeU32(a.unitCount) && r.takeU32(a.nodesPerUnit) &&
        r.takeF64(a.nodes) && r.takeF64(a.mppEnergyWh) &&
        r.takeF64(a.solarEnergyWh) && r.takeF64(a.gridEnergyWh) &&
        r.takeF64(a.chipEnergyWh) && r.takeF64(a.solarInstructions) &&
        r.takeF64(a.totalInstructions) && r.takeF64(a.fleetUtilization) &&
        r.takeF64(a.greenFraction) && r.takeF64(a.solarKwhPerDay) &&
        r.takeF64(a.gridKwhPerDay) && r.takeF64(a.co2AvoidedKgPerYear) &&
        r.takeF64(a.savingsUsdPerYear) && r.takeF64(a.panelPaybackYears) &&
        r.takeF64(a.batteryAvoidedUsdPerYear);
}

} // namespace

const char *
replyStatusName(ReplyStatus status)
{
    switch (status) {
    case ReplyStatus::Ok: return "ok";
    case ReplyStatus::ShedCapacity: return "shed-capacity";
    case ReplyStatus::ShedDeadline: return "shed-deadline";
    case ReplyStatus::Expired: return "expired";
    case ReplyStatus::BadRequest: return "bad-request";
    case ReplyStatus::ServerError: return "server-error";
    case ReplyStatus::ShuttingDown: return "shutting-down";
    }
    return "unknown";
}

std::string
encodeQuery(const PlanQuery &query)
{
    std::string out;
    appendU8(out, kFrameQuery);
    appendU32(out, query.traceId != 0 ? kProtocolVersionTraced
                                      : kProtocolVersion);
    appendU64(out, query.requestId);
    if (query.traceId != 0)
        appendU64(out, query.traceId);
    appendU32(out, query.deadlineMillis);
    appendU32(out, query.nodesPerUnit);

    auto axis8 = [&out](const auto &values) {
        appendU32(out, static_cast<std::uint32_t>(values.size()));
        for (const auto v : values)
            appendU8(out, static_cast<std::uint8_t>(v));
    };
    axis8(query.grid.sites);
    axis8(query.grid.months);
    axis8(query.grid.policies);
    axis8(query.grid.workloads);
    appendU32(out, static_cast<std::uint32_t>(query.grid.seeds.size()));
    for (const auto seed : query.grid.seeds)
        appendU64(out, seed);

    appendF64(out, query.grid.dtSeconds);
    appendF64(out, query.grid.fixedBudgetW);
    appendF64(out, query.grid.batteryDerating);
    appendF64(out, query.grid.trackingPeriodMinutes);
    appendEcon(out, query.econ);
    return out;
}

bool
decodeQuery(std::string_view frame, PlanQuery &out, std::string &error)
{
    Reader r(frame);
    std::uint8_t tag = 0;
    std::uint32_t version = 0;
    if (!r.takeU8(tag) || !r.takeU32(version)) {
        error = "truncated header";
        return false;
    }
    if (tag != kFrameQuery) {
        error = "not a query frame";
        return false;
    }
    if (!r.takeU64(out.requestId)) {
        error = "truncated request id";
        return false;
    }
    // From here on the request id is known, so BadRequest replies can
    // echo it.
    if (version != kProtocolVersion && version != kProtocolVersionTraced) {
        error = "protocol version mismatch";
        return false;
    }
    out.traceId = 0;
    if (version == kProtocolVersionTraced) {
        if (!r.takeU64(out.traceId)) {
            error = "truncated trace id";
            return false;
        }
        if (out.traceId == 0) {
            error = "traced frame with zero trace id";
            return false;
        }
    }
    if (!r.takeU32(out.deadlineMillis) || !r.takeU32(out.nodesPerUnit)) {
        error = "truncated request header";
        return false;
    }

    auto site = [](std::uint8_t raw, solar::SiteId &v) {
        if (raw >= kSiteCount)
            return false;
        v = static_cast<solar::SiteId>(raw);
        return true;
    };
    auto month = [](std::uint8_t raw, solar::Month &v) {
        if (raw >= kMonthCount)
            return false;
        v = static_cast<solar::Month>(raw);
        return true;
    };
    auto policy = [](std::uint8_t raw, campaign::CampaignPolicy &v) {
        if (raw >= kPolicyCount)
            return false;
        v = static_cast<campaign::CampaignPolicy>(raw);
        return true;
    };
    auto workloadId = [](std::uint8_t raw, workload::WorkloadId &v) {
        if (raw >= kWorkloadCount)
            return false;
        v = static_cast<workload::WorkloadId>(raw);
        return true;
    };
    auto seed = [](std::uint64_t raw, std::uint64_t &v) {
        v = raw;
        return true;
    };
    if (!takeAxis<std::uint8_t>(r, "site", out.grid.sites, site, error) ||
        !takeAxis<std::uint8_t>(r, "month", out.grid.months, month,
                                error) ||
        !takeAxis<std::uint8_t>(r, "policy", out.grid.policies, policy,
                                error) ||
        !takeAxis<std::uint8_t>(r, "workload", out.grid.workloads,
                                workloadId, error) ||
        !takeAxis<std::uint64_t>(r, "seed", out.grid.seeds, seed, error))
        return false;

    if (!r.takeF64(out.grid.dtSeconds) ||
        !r.takeF64(out.grid.fixedBudgetW) ||
        !r.takeF64(out.grid.batteryDerating) ||
        !r.takeF64(out.grid.trackingPeriodMinutes)) {
        error = "truncated simulation knobs";
        return false;
    }
    if (!takeEcon(r, out.econ)) {
        error = "truncated economic context";
        return false;
    }
    if (r.remaining() != 0) {
        error = "trailing bytes after query";
        return false;
    }
    error = validateQuery(out);
    return error.empty();
}

std::string
validateQuery(const PlanQuery &query)
{
    const auto &g = query.grid;
    if (g.sites.empty() || g.months.empty() || g.policies.empty() ||
        g.workloads.empty() || g.seeds.empty())
        return "empty scenario axis";
    if (g.sites.size() > kMaxAxisEntries ||
        g.months.size() > kMaxAxisEntries ||
        g.policies.size() > kMaxAxisEntries ||
        g.workloads.size() > kMaxAxisEntries ||
        g.seeds.size() > kMaxAxisEntries)
        return "scenario axis too large";
    if (query.nodesPerUnit == 0)
        return "nodesPerUnit must be positive";
    if (!std::isfinite(g.dtSeconds) || g.dtSeconds <= 0.0)
        return "dtSeconds must be positive and finite";
    if (!std::isfinite(g.fixedBudgetW) || g.fixedBudgetW <= 0.0)
        return "fixedBudgetW must be positive and finite";
    if (!std::isfinite(g.batteryDerating) || g.batteryDerating <= 0.0 ||
        g.batteryDerating > 1.0)
        return "batteryDerating must be in (0, 1]";
    if (!std::isfinite(g.trackingPeriodMinutes) ||
        g.trackingPeriodMinutes <= 0.0)
        return "trackingPeriodMinutes must be positive and finite";
    // assessEnergy SC_ASSERTs on negative context -- reject here so a
    // client cannot abort the server.
    const auto &e = query.econ;
    const double econ_fields[] = {e.co2KgPerKwh, e.gridUsdPerKwh,
                                  e.panelUsd, e.batteryUsd,
                                  e.batteryLifeYears};
    for (const double v : econ_fields)
        if (!std::isfinite(v) || v < 0.0)
            return "economic context must be finite and non-negative";
    return {};
}

std::string
encodeAnswerBody(const PlanAnswer &answer)
{
    std::string out;
    appendU8(out, static_cast<std::uint8_t>(ReplyStatus::Ok));
    appendU32(out, 0); // empty message
    appendAnswer(out, answer);
    return out;
}

std::string
encodeReplyFromBody(std::uint64_t request_id, std::string_view body)
{
    std::string out;
    appendU8(out, kFrameReply);
    appendU32(out, kProtocolVersion);
    appendU64(out, request_id);
    out.append(body);
    return out;
}

std::string
encodeReply(const PlanReply &reply)
{
    if (reply.status == ReplyStatus::Ok)
        return encodeReplyFromBody(reply.requestId,
                                   encodeAnswerBody(reply.answer));
    std::string out;
    appendU8(out, kFrameReply);
    appendU32(out, kProtocolVersion);
    appendU64(out, reply.requestId);
    appendU8(out, static_cast<std::uint8_t>(reply.status));
    appendU32(out, static_cast<std::uint32_t>(reply.message.size()));
    out.append(reply.message);
    return out;
}

bool
decodeReply(std::string_view frame, PlanReply &out, std::string &error)
{
    Reader r(frame);
    std::uint8_t tag = 0;
    std::uint32_t version = 0;
    if (!r.takeU8(tag) || !r.takeU32(version) ||
        !r.takeU64(out.requestId)) {
        error = "truncated reply header";
        return false;
    }
    if (tag != kFrameReply) {
        error = "not a reply frame";
        return false;
    }
    if (version != kProtocolVersion) {
        error = "protocol version mismatch";
        return false;
    }
    std::uint8_t status = 0;
    if (!r.takeU8(status)) {
        error = "truncated reply status";
        return false;
    }
    if (status > static_cast<std::uint8_t>(ReplyStatus::ShuttingDown)) {
        error = "unknown reply status";
        return false;
    }
    out.status = static_cast<ReplyStatus>(status);
    std::uint32_t message_len = 0;
    if (!r.takeU32(message_len)) {
        error = "truncated reply message length";
        return false;
    }
    if (message_len > kMaxFrameBytes ||
        !r.takeBytes(out.message, message_len)) {
        error = "truncated reply message";
        return false;
    }
    if (out.status == ReplyStatus::Ok && !takeAnswer(r, out.answer)) {
        error = "truncated reply answer";
        return false;
    }
    if (r.remaining() != 0) {
        error = "trailing bytes after reply";
        return false;
    }
    return true;
}

bool
sendFrame(int fd, std::string_view payload)
{
#if defined(_WIN32)
    (void)fd;
    (void)payload;
    return false;
#else
    std::string buf;
    buf.reserve(sizeof(std::uint32_t) + payload.size());
    appendU32(buf, static_cast<std::uint32_t>(payload.size()));
    buf.append(payload);
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n = ::send(fd, buf.data() + off, buf.size() - off,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            struct pollfd pfd;
            pfd.fd = fd;
            pfd.events = POLLOUT;
            pfd.revents = 0;
            ::poll(&pfd, 1, 100);
            continue;
        }
        return false;
    }
    return true;
#endif
}

std::string
queryKeyMaterial(const PlanQuery &query, std::string_view resolved_kernel)
{
    // The campaign grid signature already pins axes, knobs and the
    // *resolved* kernel; layer the serve-only inputs on top.
    campaign::ScenarioGrid grid = query.grid;
    grid.pvKernel.assign(resolved_kernel);
    std::string out = "serve-v";
    appendNumberText(out, static_cast<double>(kProtocolVersion));
    out += '|';
    out += campaign::gridSignature(grid);
    out += "|nodes=";
    appendNumberText(out, static_cast<double>(query.nodesPerUnit));
    out += "|econ=";
    appendNumberText(out, query.econ.co2KgPerKwh);
    out += ',';
    appendNumberText(out, query.econ.gridUsdPerKwh);
    out += ',';
    appendNumberText(out, query.econ.panelUsd);
    out += ',';
    appendNumberText(out, query.econ.batteryUsd);
    out += ',';
    appendNumberText(out, query.econ.batteryLifeYears);
    return out;
}

} // namespace solarcore::serve
