#include "client.hpp"

#include <chrono>

#if !defined(_WIN32)
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace solarcore::serve {

bool
Client::connect(const std::string &socket_path)
{
#if defined(_WIN32)
    (void)socket_path;
    return false;
#else
    close();
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path)
        return false;
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return false;
    }
    // Reads go through FrameReader::drain, which requires O_NONBLOCK;
    // writes poll-wait on EAGAIN inside sendFrame.
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    fd_ = fd;
    reader_ = util::FrameReader();
    reader_.setMaxFrameBytes(kMaxFrameBytes);
    pending_.clear();
    return true;
#endif
}

void
Client::close()
{
#if !defined(_WIN32)
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
#endif
    pending_.clear();
}

bool
Client::sendFramePayload(std::string_view payload)
{
    if (fd_ < 0)
        return false;
    return sendFrame(fd_, payload);
}

bool
Client::sendBytes(std::string_view bytes)
{
#if defined(_WIN32)
    (void)bytes;
    return false;
#else
    if (fd_ < 0)
        return false;
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            struct pollfd pfd;
            pfd.fd = fd_;
            pfd.events = POLLOUT;
            pfd.revents = 0;
            ::poll(&pfd, 1, 100);
            continue;
        }
        return false;
    }
    return true;
#endif
}

bool
Client::receiveFrame(std::string &frame, int timeout_millis)
{
#if defined(_WIN32)
    (void)frame;
    (void)timeout_millis;
    return false;
#else
    if (fd_ < 0)
        return false;
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_millis);
    for (;;) {
        if (!pending_.empty()) {
            frame = std::move(pending_.front());
            pending_.pop_front();
            return true;
        }
        int wait = -1;
        if (timeout_millis > 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0)
                return false;
            wait = static_cast<int>(left);
        }
        struct pollfd pfd;
        pfd.fd = fd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int rc = ::poll(&pfd, 1, wait);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (rc == 0)
            return false; // timeout
        std::vector<std::string> frames;
        const auto status = reader_.drain(fd_, frames);
        for (std::string &f : frames)
            pending_.push_back(std::move(f));
        if (pending_.empty() &&
            status != util::FrameReader::Status::Open)
            return false;
    }
#endif
}

bool
Client::call(const PlanQuery &query, PlanReply &reply,
             int timeout_millis, std::string &error)
{
    if (!sendFramePayload(encodeQuery(query))) {
        error = "send failed";
        return false;
    }
    std::string frame;
    if (!receiveFrame(frame, timeout_millis)) {
        error = "no reply (timeout or disconnect)";
        return false;
    }
    if (!decodeReply(frame, reply, error))
        return false;
    if (reply.requestId != query.requestId) {
        error = "reply for a different request id";
        return false;
    }
    return true;
}

} // namespace solarcore::serve
