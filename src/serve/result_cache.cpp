#include "result_cache.hpp"

#include "util/hash.hpp"

namespace solarcore::serve {

bool
ResultCache::lookup(const std::string &material, std::string &body)
{
    const std::uint64_t key = util::fnv1a(material);
    const auto it = entries_.find(key);
    if (it == entries_.end() || it->second->second.material != material) {
        ++misses_;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    body = it->second->second.body;
    ++hits_;
    return true;
}

void
ResultCache::insert(const std::string &material, std::string_view body)
{
    if (capacity_ == 0)
        return;
    const std::uint64_t key = util::fnv1a(material);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Refresh; on a genuine collision the newer answer wins, which
        // is safe because lookup() re-checks the material.
        lru_.splice(lru_.begin(), lru_, it->second);
        it->second->second.material = material;
        it->second->second.body.assign(body);
        ++insertions_;
        return;
    }
    lru_.emplace_front(key, Entry{material, std::string(body)});
    entries_.emplace(key, lru_.begin());
    ++insertions_;
    while (entries_.size() > capacity_) {
        entries_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

} // namespace solarcore::serve
