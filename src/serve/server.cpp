#include "server.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "campaign/campaign.hpp"
#include "core/carbon.hpp"
#include "core/fleet.hpp"
#include "core/simulation.hpp"
#include "obs/json.hpp"
#include "pv/pv_kernel.hpp"
#include "util/logging.hpp"

#if !defined(_WIN32)
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace solarcore::serve {

bool
serveSupported()
{
#if defined(_WIN32)
    return false;
#else
    return true;
#endif
}

/** One accepted client connection. The IO thread owns the reader;
 *  workers only write (under writeMutex) through their shared_ptr, so
 *  the fd stays open until the last in-flight reply is done. */
struct Server::Conn
{
    int fd = -1;
    std::mutex writeMutex;
    std::atomic<bool> open{true};
    util::FrameReader reader;

    ~Conn()
    {
#if !defined(_WIN32)
        if (fd >= 0)
            ::close(fd);
#endif
    }
};

/** One admitted request waiting for (or on) a worker. */
struct Server::Request
{
    std::shared_ptr<Conn> conn;
    PlanQuery query;
    std::chrono::steady_clock::time_point arrival;
    bool hasDeadline = false;
    std::chrono::steady_clock::time_point deadline;
    // Tracing: the staged span buffer travels with the request from
    // the IO thread to its worker (null when tracing is off).
    std::unique_ptr<obs::RequestTrace> trace;
    std::size_t rootSpan = obs::RequestTrace::kNoSpan;
    std::size_t queueSpan = obs::RequestTrace::kNoSpan;
    std::size_t serviceSpan = obs::RequestTrace::kNoSpan;
    bool clientTraced = false;
    bool headSampled = false;
};

namespace {

/** Latency histogram bucket upper edges [ms] (+Inf is implicit). */
const std::vector<double> &
latencyBoundsMs()
{
    static const std::vector<double> bounds = {1.0,  2.0,   5.0,
                                               10.0, 25.0,  50.0,
                                               100.0, 250.0, 1000.0};
    return bounds;
}

} // namespace

/** Count @p ms into @p hist; a non-zero @p trace_id pins an exemplar
 *  on the bucket it lands in (only ids of committed traces, so every
 *  exemplar resolves in the span export). */
void
Server::addLatency(LatencyHist &hist, double ms, std::uint64_t trace_id)
{
    const auto &bounds = latencyBoundsMs();
    if (hist.counts.empty()) {
        hist.counts.assign(bounds.size(), 0);
        hist.exemplars.assign(bounds.size() + 1, obs::MetricExemplar{});
    }
    std::size_t bin = bounds.size(); // +Inf
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (ms <= bounds[i]) {
            bin = i;
            break;
        }
    }
    if (bin < hist.counts.size())
        hist.counts[bin] += 1;
    hist.total += 1;
    hist.sumMs += ms;
    if (trace_id != 0) {
        obs::MetricExemplar &ex = hist.exemplars[bin];
        ex.valid = true;
        ex.labels = {{"trace_id", obs::spanIdHex(trace_id)}};
        ex.value = ms;
        ex.timestampSeconds =
            std::chrono::duration<double>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
    }
}

Server::Server(ServeConfig config)
    : config_(std::move(config)), resultCache_(config_.resultCacheCap),
      unitMicrosEwma_(config_.estimateInitUnitMicros),
      spanSink_(std::max<std::size_t>(1, config_.traceBufferSpans)),
      start_(std::chrono::steady_clock::now()), lastPublish_(start_)
{
    tracingEnabled_ =
        !config_.traceOut.empty() || !config_.tracePerfettoOut.empty();
}

Server::~Server()
{
    stop();
}

bool
Server::start()
{
#if defined(_WIN32)
    SC_WARN("serve: AF_UNIX sockets unavailable on this platform");
    return false;
#else
    if (started_)
        return true;
    if (config_.socketPath.empty()) {
        SC_WARN("serve: empty socket path");
        return false;
    }

    // Resolve the PV kernel exactly like runCampaign: "auto" picks the
    // best supported kernel, and the *resolved* name feeds every cache
    // key so answers are never mixed across kernels.
    pv::PvKernel kernel = pv::detectPvKernel();
    if (config_.pvKernel != "auto") {
        pv::PvKernel requested;
        if (!pv::pvKernelFromToken(config_.pvKernel, requested)) {
            SC_WARN("serve: unknown pv kernel '", config_.pvKernel, "'");
            return false;
        }
        if (!pv::pvKernelSupported(requested)) {
            SC_WARN("serve: pv kernel '", config_.pvKernel,
                    "' not supported on this cpu");
            return false;
        }
        kernel = requested;
    }
    pv::setPvKernel(kernel);
    resolvedKernel_ = pv::pvKernelName(kernel);

    if (!config_.unitCacheDir.empty()) {
        // Same salt as a campaign run with --audit=off, so the two
        // tools share warm entries.
        unitCache_ = std::make_unique<campaign::UnitResultCache>(
            config_.unitCacheDir, config_.unitCacheCap, "audit=off");
        if (!unitCache_->ok()) {
            SC_WARN("serve: unit cache directory '", config_.unitCacheDir,
                    "' unusable; continuing without");
            unitCache_.reset();
        }
    }

    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (config_.socketPath.size() >= sizeof addr.sun_path) {
        SC_WARN("serve: socket path too long: ", config_.socketPath);
        return false;
    }
    std::memcpy(addr.sun_path, config_.socketPath.c_str(),
                config_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        SC_WARN("serve: socket() failed: ", std::strerror(errno));
        return false;
    }
    // A stale socket file from a dead server would make bind fail;
    // the daemon owns its path.
    ::unlink(config_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        SC_WARN("serve: cannot bind '", config_.socketPath,
                "': ", std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    ::fcntl(listenFd_, F_SETFL, O_NONBLOCK);

    if (config_.metricsPort >= 0)
        endpoint_.start(config_.metricsPort);

    start_ = std::chrono::steady_clock::now();
    lastPublish_ = start_;
    running_.store(true);
    started_ = true;

    const int n_workers = std::max(1, config_.workers);
    workers_.reserve(static_cast<std::size_t>(n_workers));
    for (int i = 0; i < n_workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    ioThread_ = std::thread([this] { ioLoop(); });

    publish(/*force=*/true);
    return true;
#endif
}

void
Server::stop()
{
#if !defined(_WIN32)
    if (!started_)
        return;
    running_.store(false);
    queueCv_.notify_all();
    // Workers drain the queue (answering ShuttingDown) before they
    // exit; in-flight replies hold their Conn alive via shared_ptr.
    for (std::thread &w : workers_)
        w.join();
    workers_.clear();
    if (ioThread_.joinable())
        ioThread_.join();
    conns_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::unlink(config_.socketPath.c_str());
    publish(/*force=*/true);
    if (tracingEnabled_) {
        std::string error;
        if (!obs::writeSpanExports(spanSink_.snapshot(),
                                   config_.traceOut,
                                   config_.tracePerfettoOut, error))
            SC_WARN("serve: span export failed: ", error);
    }
    endpoint_.stop();
    started_ = false;
#endif
}

#if !defined(_WIN32)

void
Server::ioLoop()
{
    std::vector<struct pollfd> pfds;
    while (running_.load()) {
        pfds.clear();
        pfds.push_back({listenFd_, POLLIN, 0});
        for (const auto &conn : conns_)
            pfds.push_back({conn->fd, POLLIN, 0});
        const int rc =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            SC_WARN_ONCE("serve: poll failed: ", std::strerror(errno));
            break;
        }
        // acceptClients() appends to conns_, so remember how many
        // connections the pollfd array actually covers before it
        // runs; freshly accepted fds get polled next iteration.
        const std::size_t polled = conns_.size();
        if (pfds[0].revents & POLLIN)
            acceptClients();
        // Walk the polled prefix: drainConn can reply inline (shed
        // paths) but never mutates conns_.
        std::vector<std::shared_ptr<Conn>> dead;
        for (std::size_t i = 0; i < polled; ++i) {
            const auto &conn = conns_[i];
            if (!(pfds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            if (!drainConn(conn))
                dead.push_back(conn);
        }
        for (const auto &conn : dead) {
            conn->open.store(false);
            conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                         conns_.end());
        }
    }
    // Leaving: new reads stop; open fds close once the last worker
    // reply drops its reference.
    for (const auto &conn : conns_)
        conn->open.store(false);
}

void
Server::acceptClients()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN: accepted everything pending
        }
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->reader.setMaxFrameBytes(kMaxFrameBytes);
        conns_.push_back(std::move(conn));
        connections_.fetch_add(1);
    }
}

bool
Server::drainConn(const std::shared_ptr<Conn> &conn)
{
    std::vector<std::string> frames;
    const auto status = conn->reader.drain(conn->fd, frames);
    for (const std::string &frame : frames)
        handleFrame(conn, frame);
    switch (status) {
    case util::FrameReader::Status::Open:
        return true;
    case util::FrameReader::Status::Closed:
        // A torn trailing frame on a clean close is a protocol error
        // (the client died mid-frame); a bare close is just a client
        // going away.
        if (conn->reader.pendingBytes() != 0)
            protocolErrors_.fetch_add(1);
        disconnects_.fetch_add(1);
        return false;
    case util::FrameReader::Status::Error:
    default:
        // Read error or an over-cap declared frame length.
        protocolErrors_.fetch_add(1);
        disconnects_.fetch_add(1);
        return false;
    }
}

void
Server::handleFrame(const std::shared_ptr<Conn> &conn,
                    const std::string &frame)
{
    requests_.fetch_add(1);
    const std::int64_t arrival_ns = obs::spanNowNs();
    Request req;
    req.conn = conn;
    req.arrival = std::chrono::steady_clock::now();

    std::string error;
    if (!decodeQuery(frame, req.query, error)) {
        // No trace for undecodable frames: the trace id (if any) is
        // part of what failed to parse.
        badRequest_.fetch_add(1);
        replyError(conn, req.query.requestId, ReplyStatus::BadRequest,
                   error);
        publish(/*force=*/false);
        return;
    }
    const std::size_t units = req.query.grid.unitCount();

    if (tracingEnabled_) {
        // Stage spans speculatively for every request; the commit /
        // discard decision happens in finishRequest() when the
        // outcome (slow? shed? expired?) is known. Backdate the root
        // and io.read spans to frame arrival so decode time is
        // covered.
        req.clientTraced = req.query.traceId != 0;
        const std::uint64_t seq = traceSeq_.fetch_add(1) + 1;
        req.headSampled = config_.traceSample > 0 &&
            seq % config_.traceSample == 0;
        req.trace = std::make_unique<obs::RequestTrace>();
        req.trace->begin(req.clientTraced ? req.query.traceId
                                          : obs::newTraceId());
        req.rootSpan = req.trace->openSpan("request");
        const std::uint64_t root_id = req.trace->spanId(req.rootSpan);
        if (obs::SpanRecord *root = req.trace->span(req.rootSpan)) {
            root->startNs = arrival_ns;
            root->attr("request_id",
                       static_cast<std::int64_t>(req.query.requestId));
            root->attr("client_traced", req.clientTraced);
            root->attr("units", static_cast<std::int64_t>(units));
        }
        const std::size_t io_span =
            req.trace->openSpan("io.read", root_id);
        if (obs::SpanRecord *io = req.trace->span(io_span))
            io->startNs = arrival_ns;
        req.trace->closeSpan(io_span);
    }
    const std::uint64_t root_id =
        req.trace ? req.trace->spanId(req.rootSpan) : 0;
    const std::size_t admit_span =
        req.trace ? req.trace->openSpan("admit", root_id)
                  : obs::RequestTrace::kNoSpan;
    auto admitted = [&](const char *decision) {
        if (req.trace) {
            if (obs::SpanRecord *s = req.trace->span(admit_span))
                s->attr("decision", decision);
            req.trace->closeSpan(admit_span);
        }
    };

    if (units > config_.maxUnitsPerQuery) {
        badRequest_.fetch_add(1);
        admitted("unit-cap");
        // As in the worker loop: bookkeeping lands before the reply
        // frame so a serial client never observes a reply whose
        // request is missing from the slow log or histograms.
        finishRequest(req, ReplyStatus::BadRequest, -1.0, -1.0,
                      static_cast<std::uint32_t>(units));
        replyError(conn, req.query.requestId, ReplyStatus::BadRequest,
                   "grid exceeds the server's unit cap");
        publish(/*force=*/false);
        return;
    }
    if (!running_.load()) {
        shuttingDown_.fetch_add(1);
        admitted("shutting-down");
        finishRequest(req, ReplyStatus::ShuttingDown, -1.0, -1.0,
                      static_cast<std::uint32_t>(units));
        replyError(conn, req.query.requestId, ReplyStatus::ShuttingDown,
                   "server is shutting down");
        return;
    }
    if (req.query.deadlineMillis > 0) {
        req.hasDeadline = true;
        req.deadline = req.arrival +
            std::chrono::milliseconds(req.query.deadlineMillis);
        // Predictive shed: simulating this grid at the current
        // estimate would blow the deadline, so say no *now* instead
        // of wasting a worker on an answer nobody can use.
        const double est = estimateUnitMicros();
        if (est > 0.0 &&
            est * static_cast<double>(units) >
                1000.0 * static_cast<double>(req.query.deadlineMillis)) {
            shedDeadline_.fetch_add(1);
            admitted("shed-deadline");
            finishRequest(req, ReplyStatus::ShedDeadline, -1.0, -1.0,
                          static_cast<std::uint32_t>(units));
            replyError(conn, req.query.requestId,
                       ReplyStatus::ShedDeadline,
                       "deadline shorter than the predicted service time");
            publish(/*force=*/false);
            return;
        }
    }
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (queue_.size() >= config_.maxQueueDepth) {
            shedCapacity_.fetch_add(1);
            admitted("shed-capacity");
            finishRequest(req, ReplyStatus::ShedCapacity, -1.0, -1.0,
                          static_cast<std::uint32_t>(units));
            replyError(conn, req.query.requestId,
                       ReplyStatus::ShedCapacity, "request queue full");
            publish(/*force=*/false);
            return;
        }
        admitted("ok");
        if (req.trace)
            req.queueSpan = req.trace->openSpan("queue.wait", root_id);
        queue_.push_back(std::move(req));
    }
    queueCv_.notify_one();
}

void
Server::replyError(const std::shared_ptr<Conn> &conn,
                   std::uint64_t request_id, ReplyStatus status,
                   const std::string &message)
{
    PlanReply reply;
    reply.requestId = request_id;
    reply.status = status;
    reply.message = message;
    const std::string payload = encodeReply(reply);
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (!conn->open.load())
        return;
    if (!sendFrame(conn->fd, payload))
        conn->open.store(false);
}

void
Server::workerLoop(int worker_index)
{
    (void)worker_index;
    // One reusable simulation workspace per worker: steady-state unit
    // execution is allocation-free, same as the campaign pool.
    core::SimWorkspace workspace;
    for (;;) {
        Request req;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return !queue_.empty() || !running_.load();
            });
            if (queue_.empty()) {
                if (!running_.load())
                    return;
                continue;
            }
            req = std::move(queue_.front());
            queue_.pop_front();
        }
        inflight_.fetch_add(1);
        const auto dequeued = std::chrono::steady_clock::now();
        const double queue_ms =
            std::chrono::duration<double, std::milli>(dequeued -
                                                      req.arrival)
                .count();
        recordLatency("queue", std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(
                                   dequeued - req.arrival)
                                   .count());
        const std::uint32_t units =
            static_cast<std::uint32_t>(req.query.grid.unitCount());
        obs::RequestTrace *trace = req.trace.get();
        const std::uint64_t root_id =
            trace ? trace->spanId(req.rootSpan) : 0;
        if (trace) {
            trace->closeSpan(req.queueSpan);
            // Spans opened from here render on this worker's lane.
            trace->setLane(static_cast<std::uint32_t>(worker_index) + 1);
        }

        if (!running_.load()) {
            shuttingDown_.fetch_add(1);
            finishRequest(req, ReplyStatus::ShuttingDown, queue_ms, -1.0,
                          units);
            replyError(req.conn, req.query.requestId,
                       ReplyStatus::ShuttingDown,
                       "server is shutting down");
            inflight_.fetch_sub(1);
            continue;
        }
        if (req.hasDeadline && dequeued > req.deadline) {
            expired_.fetch_add(1);
            finishRequest(req, ReplyStatus::Expired, queue_ms, -1.0,
                          units);
            replyError(req.conn, req.query.requestId, ReplyStatus::Expired,
                       "deadline passed while queued");
            inflight_.fetch_sub(1);
            publish(/*force=*/false);
            continue;
        }

        std::string body;
        bool expired = false;
        bool ok = false;
        double service_ms = 0.0;
        {
            // The workspace travels via the profiler-less fast path;
            // latency is recorded manually under the shared profiler.
            if (trace) {
                req.serviceSpan = trace->openSpan("service", root_id);
                if (obs::SpanRecord *s = trace->span(req.serviceSpan)) {
                    s->attr("kernel", resolvedKernel_.c_str());
                    s->attr("worker",
                            static_cast<std::int64_t>(worker_index));
                }
            }
            const auto t0 = std::chrono::steady_clock::now();
            ok = executeQueryWith(req, body, expired, workspace);
            const auto t1 = std::chrono::steady_clock::now();
            if (trace)
                trace->closeSpan(req.serviceSpan);
            service_ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            recordLatency("service",
                          std::chrono::duration_cast<
                              std::chrono::nanoseconds>(t1 - t0)
                              .count());
        }
        ReplyStatus status = ReplyStatus::Ok;
        std::string payload;
        if (expired) {
            status = ReplyStatus::Expired;
            expired_.fetch_add(1);
        } else if (!ok) {
            status = ReplyStatus::ServerError;
            serverError_.fetch_add(1);
        } else {
            ok_.fetch_add(1);
            obs::SpanScope reply_span(trace, "reply", root_id);
            payload = encodeReplyFromBody(req.query.requestId, body);
            reply_span.attr("bytes",
                            static_cast<std::int64_t>(payload.size()));
        }
        // Bookkeeping must land before the reply frame leaves: a
        // client that has read reply N and then issues N+1 is
        // guaranteed to find N already in the slow-query log and
        // histograms, so the log order matches a serial client's
        // issue order.
        finishRequest(req, status, queue_ms, service_ms, units);
        if (status == ReplyStatus::Expired) {
            replyError(req.conn, req.query.requestId, ReplyStatus::Expired,
                       "deadline passed during simulation");
        } else if (status == ReplyStatus::ServerError) {
            replyError(req.conn, req.query.requestId,
                       ReplyStatus::ServerError, "internal error");
        } else {
            std::lock_guard<std::mutex> lock(req.conn->writeMutex);
            if (req.conn->open.load() &&
                !sendFrame(req.conn->fd, payload))
                req.conn->open.store(false);
        }
        if (config_.verbose) {
            std::string line = "serve: request ";
            line += std::to_string(req.query.requestId);
            line += expired ? " expired\n" : (ok ? " ok\n" : " error\n");
            std::cerr << line;
        }
        inflight_.fetch_sub(1);
        publish(/*force=*/false);
    }
}

bool
Server::executeQueryWith(const Request &req, std::string &body,
                         bool &expired, core::SimWorkspace &workspace)
{
    obs::RequestTrace *trace = req.trace.get();
    const std::uint64_t service_id =
        trace ? trace->spanId(req.serviceSpan) : 0;
    const std::string material =
        queryKeyMaterial(req.query, resolvedKernel_);
    {
        std::lock_guard<std::mutex> lock(resultCacheMutex_);
        if (resultCache_.lookup(material, body)) {
            if (obs::SpanRecord *s =
                    trace ? trace->span(req.serviceSpan) : nullptr)
                s->attr("result_cache", "hit");
            return true;
        }
    }
    if (obs::SpanRecord *s =
            trace ? trace->span(req.serviceSpan) : nullptr)
        s->attr("result_cache", "miss");

    campaign::ScenarioGrid grid = req.query.grid;
    grid.pvKernel = resolvedKernel_;
    const std::vector<campaign::ScenarioUnit> units =
        campaign::expandGrid(grid);

    std::vector<core::FleetGroupEnergy> groups;
    groups.reserve(units.size());
    std::uint64_t simulated = 0;
    const auto service_start = std::chrono::steady_clock::now();
    std::size_t unit_index = 0;
    for (const campaign::ScenarioUnit &unit : units) {
        if (req.hasDeadline &&
            std::chrono::steady_clock::now() > req.deadline) {
            expired = true;
            return false;
        }
        obs::SpanScope unit_span(trace, "unit", service_id);
        unit_span.attr("unit",
                       static_cast<std::int64_t>(unit_index++));
        campaign::UnitMetrics m;
        bool cached = false;
        if (unitCache_ && unitCache_->lookup(grid, unit, m)) {
            cached = true;
            unitsFromUnitCache_.fetch_add(1);
        }
        if (!cached) {
            m = campaign::runUnit(unit, grid, nullptr, nullptr, nullptr,
                                  nullptr, &workspace);
            unitsSimulated_.fetch_add(1);
            ++simulated;
            if (unitCache_)
                unitCache_->store(grid, unit, m);
        }
        unit_span.attr("cache", cached ? "hit" : "miss");
        unit_span.attr("kernel", resolvedKernel_.c_str());
        unit_span.close();
        core::FleetGroupEnergy g;
        g.nodeCount = static_cast<double>(req.query.nodesPerUnit);
        g.mppEnergyWh = m.mppEnergyWh;
        g.solarEnergyWh = m.solarEnergyWh;
        g.gridEnergyWh = m.gridEnergyWh;
        g.chipEnergyWh = m.chipEnergyWh;
        g.solarInstructions = m.solarInstructions;
        g.totalInstructions = m.totalInstructions;
        groups.push_back(g);
    }

    obs::SpanScope agg_span(trace, "aggregate", service_id);
    agg_span.attr("groups", static_cast<std::int64_t>(groups.size()));
    const core::FleetTotals totals = core::aggregateFleet(groups);
    const core::CarbonReport carbon = core::assessEnergy(
        totals.solarEnergyWh, totals.gridEnergyWh, req.query.econ);

    PlanAnswer answer;
    answer.unitCount = static_cast<std::uint32_t>(units.size());
    answer.nodesPerUnit = req.query.nodesPerUnit;
    answer.nodes = totals.nodes;
    answer.mppEnergyWh = totals.mppEnergyWh;
    answer.solarEnergyWh = totals.solarEnergyWh;
    answer.gridEnergyWh = totals.gridEnergyWh;
    answer.chipEnergyWh = totals.chipEnergyWh;
    answer.solarInstructions = totals.solarInstructions;
    answer.totalInstructions = totals.totalInstructions;
    answer.fleetUtilization = totals.fleetUtilization;
    answer.greenFraction = totals.greenFraction;
    answer.solarKwhPerDay = carbon.solarKwhPerDay;
    answer.gridKwhPerDay = carbon.gridKwhPerDay;
    answer.co2AvoidedKgPerYear = carbon.co2AvoidedKgPerYear;
    answer.savingsUsdPerYear = carbon.savingsUsdPerYear;
    answer.panelPaybackYears = carbon.panelPaybackYears;
    answer.batteryAvoidedUsdPerYear = carbon.batteryAvoidedUsdPerYear;
    body = encodeAnswerBody(answer);
    agg_span.close();

    {
        std::lock_guard<std::mutex> lock(resultCacheMutex_);
        resultCache_.insert(material, body);
    }
    if (simulated > 0) {
        const double micros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - service_start)
                .count();
        updateEstimate(micros / static_cast<double>(simulated));
    }
    return true;
}

#endif // !defined(_WIN32)

void
Server::recordLatency(const char *scope, std::int64_t ns)
{
    std::lock_guard<std::mutex> lock(profMutex_);
    prof_.enter(scope);
    prof_.exit(ns);
}

void
Server::finishRequest(Request &req, ReplyStatus status, double queue_ms,
                      double service_ms, std::uint32_t units)
{
    const char *token = replyStatusName(status);
    // Tail bias: shed/expired/error outcomes and slow completions are
    // always interesting. BadRequest and ShuttingDown are excluded --
    // a fuzzing client or a shutdown burst would flood the log with
    // requests that never touched the planner.
    const bool tail_worthy = status == ReplyStatus::ShedCapacity ||
        status == ReplyStatus::ShedDeadline ||
        status == ReplyStatus::Expired ||
        status == ReplyStatus::ServerError;
    const double total_ms = (queue_ms > 0.0 ? queue_ms : 0.0) +
        (service_ms > 0.0 ? service_ms : 0.0);
    const bool slow = total_ms >= config_.slowMillis;

    std::uint64_t kept_trace = 0;
    if (req.trace) {
        if (obs::SpanRecord *root = req.trace->span(req.rootSpan))
            root->attr("status", token);
        req.trace->closeSpan(req.rootSpan);
        const bool keep = req.clientTraced || req.headSampled ||
            tail_worthy || slow;
        if (keep) {
            kept_trace = req.trace->traceId();
            if (req.clientTraced)
                tracesClientStamped_.fetch_add(1);
            else if (req.headSampled)
                tracesHeadSampled_.fetch_add(1);
            else
                tracesTailKept_.fetch_add(1);
            spanSink_.commit(*req.trace);
        } else {
            req.trace->reset();
        }
    }
    {
        std::lock_guard<std::mutex> lock(histMutex_);
        if (queue_ms >= 0.0)
            addLatency(queueHist_, queue_ms, kept_trace);
        if (service_ms >= 0.0)
            addLatency(serviceHist_, service_ms, kept_trace);
    }
    if (slow || tail_worthy) {
        SlowQueryEntry entry;
        entry.requestId = req.query.requestId;
        entry.traceId = kept_trace;
        entry.status = token;
        entry.queueMs = queue_ms > 0.0 ? queue_ms : 0.0;
        entry.serviceMs = service_ms > 0.0 ? service_ms : 0.0;
        entry.units = units;
        std::lock_guard<std::mutex> lock(slowMutex_);
        slowQueries_.push_back(std::move(entry));
        while (slowQueries_.size() > config_.slowLogCap &&
               !slowQueries_.empty())
            slowQueries_.pop_front();
    }
}

double
Server::estimateUnitMicros() const
{
    std::lock_guard<std::mutex> lock(estimateMutex_);
    return unitMicrosEwma_;
}

void
Server::updateEstimate(double measured_unit_micros)
{
    std::lock_guard<std::mutex> lock(estimateMutex_);
    if (unitMicrosEwma_ <= 0.0)
        unitMicrosEwma_ = measured_unit_micros;
    else
        unitMicrosEwma_ =
            0.7 * unitMicrosEwma_ + 0.3 * measured_unit_micros;
}

ServeSnapshot
Server::snapshot() const
{
    ServeSnapshot s;
    s.uptimeSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    s.workers = static_cast<std::size_t>(std::max(1, config_.workers));
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        s.queueDepth = queue_.size();
    }
    s.inflight = inflight_.load();
    s.connections = connections_.load();
    s.disconnects = disconnects_.load();
    s.protocolErrors = protocolErrors_.load();
    s.requests = requests_.load();
    s.ok = ok_.load();
    s.shedCapacity = shedCapacity_.load();
    s.shedDeadline = shedDeadline_.load();
    s.expired = expired_.load();
    s.badRequest = badRequest_.load();
    s.serverError = serverError_.load();
    s.shuttingDown = shuttingDown_.load();
    s.unitsSimulated = unitsSimulated_.load();
    s.unitsFromUnitCache = unitsFromUnitCache_.load();
    {
        std::lock_guard<std::mutex> lock(resultCacheMutex_);
        s.resultCacheSize = resultCache_.size();
        s.resultCacheHits = resultCache_.hits();
        s.resultCacheMisses = resultCache_.misses();
        s.resultCacheInsertions = resultCache_.insertions();
        s.resultCacheEvictions = resultCache_.evictions();
    }
    if (unitCache_) {
        s.unitCacheEnabled = true;
        s.unitCacheSize = unitCache_->size();
        s.unitCache = unitCache_->counters();
    }
    {
        std::lock_guard<std::mutex> lock(profMutex_);
        const auto &children = prof_.root().children;
        const auto q = children.find("queue");
        if (q != children.end()) {
            s.queueP50Ms = q->second->quantileNs(0.5) / 1e6;
            s.queueP99Ms = q->second->quantileNs(0.99) / 1e6;
        }
        const auto svc = children.find("service");
        if (svc != children.end()) {
            s.serviceP50Ms = svc->second->quantileNs(0.5) / 1e6;
            s.serviceP99Ms = svc->second->quantileNs(0.99) / 1e6;
        }
    }
    s.estimateUnitMicros = estimateUnitMicros();
    s.tracingEnabled = tracingEnabled_;
    s.trace = spanSink_.counters();
    s.tracesClientStamped = tracesClientStamped_.load();
    s.tracesHeadSampled = tracesHeadSampled_.load();
    s.tracesTailKept = tracesTailKept_.load();
    {
        std::lock_guard<std::mutex> lock(slowMutex_);
        s.slowQueries.assign(slowQueries_.begin(), slowQueries_.end());
    }
    return s;
}

std::string
Server::renderStatusJson(const ServeSnapshot &snap,
                         const std::string &socket_path,
                         const std::string &kernel)
{
    using obs::jsonNumber;
    using obs::jsonString;
    std::string out = "{\"schema\":\"solarcore-serve-status-v1\"";
    out += ",\"socket\":" + jsonString(socket_path);
    out += ",\"pv_kernel\":" + jsonString(kernel);
    out += ",\"uptime_seconds\":" + jsonNumber(snap.uptimeSeconds);
    out += ",\"workers\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.workers));
    out += ",\"queue_depth\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.queueDepth));
    out += ",\"inflight\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.inflight));
    out += ",\"connections\":" + jsonNumber(snap.connections);
    out += ",\"disconnects\":" + jsonNumber(snap.disconnects);
    out += ",\"protocol_errors\":" + jsonNumber(snap.protocolErrors);
    out += ",\"requests\":" + jsonNumber(snap.requests);
    out += ",\"ok\":" + jsonNumber(snap.ok);
    out += ",\"shed_capacity\":" + jsonNumber(snap.shedCapacity);
    out += ",\"shed_deadline\":" + jsonNumber(snap.shedDeadline);
    out += ",\"expired\":" + jsonNumber(snap.expired);
    out += ",\"bad_request\":" + jsonNumber(snap.badRequest);
    out += ",\"server_error\":" + jsonNumber(snap.serverError);
    out += ",\"shutting_down\":" + jsonNumber(snap.shuttingDown);
    out += ",\"units_simulated\":" + jsonNumber(snap.unitsSimulated);
    out += ",\"units_from_unit_cache\":" +
        jsonNumber(snap.unitsFromUnitCache);
    out += ",\"latency_ms\":{\"queue_p50\":" + jsonNumber(snap.queueP50Ms);
    out += ",\"queue_p99\":" + jsonNumber(snap.queueP99Ms);
    out += ",\"service_p50\":" + jsonNumber(snap.serviceP50Ms);
    out += ",\"service_p99\":" + jsonNumber(snap.serviceP99Ms);
    out += '}';
    out += ",\"estimate_unit_micros\":" +
        jsonNumber(snap.estimateUnitMicros);
    out += ",\"result_cache\":{\"size\":" +
        jsonNumber(static_cast<std::uint64_t>(snap.resultCacheSize));
    out += ",\"hits\":" + jsonNumber(snap.resultCacheHits);
    out += ",\"misses\":" + jsonNumber(snap.resultCacheMisses);
    out += ",\"insertions\":" + jsonNumber(snap.resultCacheInsertions);
    out += ",\"evictions\":" + jsonNumber(snap.resultCacheEvictions);
    out += '}';
    if (snap.unitCacheEnabled) {
        out += ",\"unit_cache\":{\"size\":" +
            jsonNumber(static_cast<std::uint64_t>(snap.unitCacheSize));
        out += ",\"hits\":" + jsonNumber(snap.unitCache.hits);
        out += ",\"misses\":" + jsonNumber(snap.unitCache.misses);
        out += ",\"stores\":" + jsonNumber(snap.unitCache.stores);
        out += ",\"evictions\":" + jsonNumber(snap.unitCache.evictions);
        out += '}';
    }
    out += ",\"tracing\":{\"enabled\":";
    out += snap.tracingEnabled ? "true" : "false";
    out += ",\"buffered_spans\":" + jsonNumber(snap.trace.spans);
    out += ",\"committed_traces\":" +
        jsonNumber(snap.trace.committedTraces);
    out += ",\"committed_spans\":" +
        jsonNumber(snap.trace.committedSpans);
    out += ",\"dropped_spans\":" + jsonNumber(snap.trace.droppedSpans);
    out += ",\"client_stamped\":" + jsonNumber(snap.tracesClientStamped);
    out += ",\"head_sampled\":" + jsonNumber(snap.tracesHeadSampled);
    out += ",\"tail_kept\":" + jsonNumber(snap.tracesTailKept);
    out += '}';
    out += ",\"slow_queries\":[";
    for (std::size_t i = 0; i < snap.slowQueries.size(); ++i) {
        const SlowQueryEntry &e = snap.slowQueries[i];
        if (i > 0)
            out += ',';
        out += "{\"request_id\":" + jsonNumber(e.requestId);
        out += ",\"trace_id\":" +
            jsonString(e.traceId != 0 ? obs::spanIdHex(e.traceId)
                                      : std::string());
        out += ",\"status\":" + jsonString(e.status);
        out += ",\"queue_ms\":" + jsonNumber(e.queueMs);
        out += ",\"service_ms\":" + jsonNumber(e.serviceMs);
        out += ",\"units\":" +
            jsonNumber(static_cast<std::uint64_t>(e.units));
        out += '}';
    }
    out += ']';
    out += "}\n";
    return out;
}

void
Server::fillRegistry(const ServeSnapshot &snap)
{
    auto set = [this](const char *name, double v, const char *desc) {
        stats_.scalar(name, desc).set(v);
    };
    set("serve.requests", static_cast<double>(snap.requests),
        "query frames received");
    set("serve.ok", static_cast<double>(snap.ok),
        "requests answered with a plan");
    set("serve.shedCapacity", static_cast<double>(snap.shedCapacity),
        "requests shed on a full queue");
    set("serve.shedDeadline", static_cast<double>(snap.shedDeadline),
        "requests shed on a predicted deadline miss");
    set("serve.expired", static_cast<double>(snap.expired),
        "requests whose deadline lapsed before completion");
    set("serve.badRequest", static_cast<double>(snap.badRequest),
        "malformed or invalid requests");
    set("serve.serverError", static_cast<double>(snap.serverError),
        "requests failed internally");
    set("serve.shuttingDown", static_cast<double>(snap.shuttingDown),
        "requests refused during shutdown");
    set("serve.connections", static_cast<double>(snap.connections),
        "client connections accepted");
    set("serve.disconnects", static_cast<double>(snap.disconnects),
        "client connections closed");
    set("serve.protocolErrors", static_cast<double>(snap.protocolErrors),
        "framing/protocol violations observed");
    set("serve.queueDepth", static_cast<double>(snap.queueDepth),
        "requests waiting for a worker");
    set("serve.inflight", static_cast<double>(snap.inflight),
        "requests being executed");
    set("serve.unitsSimulated", static_cast<double>(snap.unitsSimulated),
        "scenario units simulated");
    set("serve.unitsFromUnitCache",
        static_cast<double>(snap.unitsFromUnitCache),
        "scenario units served from the persistent unit cache");
    set("serve.resultCache.hits",
        static_cast<double>(snap.resultCacheHits),
        "answer-cache lookup hits");
    set("serve.resultCache.misses",
        static_cast<double>(snap.resultCacheMisses),
        "answer-cache lookup misses");
    set("serve.resultCache.insertions",
        static_cast<double>(snap.resultCacheInsertions),
        "answer-cache entries written");
    set("serve.resultCache.evictions",
        static_cast<double>(snap.resultCacheEvictions),
        "answer-cache LRU evictions");
    set("serve.resultCache.size",
        static_cast<double>(snap.resultCacheSize),
        "answer-cache entries resident");
    set("serve.trace.committedTraces",
        static_cast<double>(snap.trace.committedTraces),
        "request traces committed to the span sink");
    set("serve.trace.committedSpans",
        static_cast<double>(snap.trace.committedSpans),
        "spans committed to the span sink");
    set("serve.trace.droppedSpans",
        static_cast<double>(snap.trace.droppedSpans),
        "spans dropped (staging or sink capacity)");
    set("serve.trace.clientStamped",
        static_cast<double>(snap.tracesClientStamped),
        "kept traces with a client-stamped trace id");
    set("serve.trace.headSampled",
        static_cast<double>(snap.tracesHeadSampled),
        "kept traces selected by head sampling");
    set("serve.trace.tailKept",
        static_cast<double>(snap.tracesTailKept),
        "kept traces selected by the slow/shed/error tail bias");
    set("serve.slowQueries",
        static_cast<double>(snap.slowQueries.size()),
        "entries in the bounded slow-query log");
    if (snap.unitCacheEnabled) {
        set("serve.unitCache.hits",
            static_cast<double>(snap.unitCache.hits),
            "persistent unit-cache hits");
        set("serve.unitCache.misses",
            static_cast<double>(snap.unitCache.misses),
            "persistent unit-cache misses");
        set("serve.unitCache.stores",
            static_cast<double>(snap.unitCache.stores),
            "persistent unit-cache stores");
        set("serve.unitCache.evictions",
            static_cast<double>(snap.unitCache.evictions),
            "persistent unit-cache evictions");
    }
}

std::string
Server::renderMetrics(const ServeSnapshot &snap)
{
    obs::OpenMetricsWriter w;
    w.gauge("solarcore_serve_uptime_seconds",
            "wall time since the server started [s]",
            snap.uptimeSeconds);
    w.gauge("solarcore_serve_workers", "planner worker threads",
            static_cast<double>(snap.workers));
    w.gauge("solarcore_serve_latency_queue_p50_ms",
            "median queue wait [ms]", snap.queueP50Ms);
    w.gauge("solarcore_serve_latency_queue_p99_ms",
            "p99 queue wait [ms]", snap.queueP99Ms);
    w.gauge("solarcore_serve_latency_service_p50_ms",
            "median service time [ms]", snap.serviceP50Ms);
    w.gauge("solarcore_serve_latency_service_p99_ms",
            "p99 service time [ms]", snap.serviceP99Ms);
    {
        // Explicit ms-bucket histograms carrying trace-id exemplars:
        // a scrape that flags a latency bucket links straight to a
        // committed trace in the span export.
        std::lock_guard<std::mutex> lock(histMutex_);
        if (queueHist_.total > 0)
            w.histogram("solarcore_serve_queue_wait_ms",
                        "queue wait per request [ms]", latencyBoundsMs(),
                        queueHist_.counts, queueHist_.total,
                        queueHist_.sumMs, queueHist_.exemplars);
        if (serviceHist_.total > 0)
            w.histogram("solarcore_serve_service_time_ms",
                        "service time per request [ms]",
                        latencyBoundsMs(), serviceHist_.counts,
                        serviceHist_.total, serviceHist_.sumMs,
                        serviceHist_.exemplars);
    }
    obs::appendRegistry(w, stats_);
    {
        std::lock_guard<std::mutex> lock(profMutex_);
        obs::appendProfiler(w, prof_);
    }
    return w.finish();
}

std::vector<std::pair<std::string, double>>
Server::statsRows()
{
    const ServeSnapshot snap = snapshot();
    std::lock_guard<std::mutex> lock(publishMutex_);
    fillRegistry(snap);
    return stats_.snapshot();
}

void
Server::publishNow()
{
    publish(/*force=*/true);
}

void
Server::publish(bool force)
{
    const bool want_metrics =
        endpoint_.port() > 0 || !config_.metricsOut.empty() ||
        config_.metricsPort >= 0;
    if (config_.statusPath.empty() && !want_metrics)
        return;
    {
        std::lock_guard<std::mutex> lock(publishMutex_);
        const auto now = std::chrono::steady_clock::now();
        const double since =
            std::chrono::duration<double>(now - lastPublish_).count();
        if (!force && published_ && since < config_.minPublishSeconds)
            return;
        lastPublish_ = now;
        published_ = true;
    }
    const ServeSnapshot snap = snapshot();
    std::lock_guard<std::mutex> lock(publishMutex_);
    if (!config_.statusPath.empty()) {
        const std::string tmp = config_.statusPath + ".tmp";
        {
            std::ofstream os(tmp, std::ios::trunc);
            if (!os) {
                SC_WARN_ONCE("serve: cannot open '", tmp, "'");
                return;
            }
            os << renderStatusJson(snap, config_.socketPath,
                                   resolvedKernel_);
        }
        if (std::rename(tmp.c_str(), config_.statusPath.c_str()) != 0)
            SC_WARN_ONCE("serve: rename to '", config_.statusPath,
                         "' failed");
    }
    if (want_metrics) {
        fillRegistry(snap);
        const std::string payload = renderMetrics(snap);
        endpoint_.update(payload);
        if (!config_.metricsOut.empty()) {
            const std::string tmp = config_.metricsOut + ".tmp";
            {
                std::ofstream os(tmp, std::ios::trunc);
                if (!os) {
                    SC_WARN_ONCE("serve: cannot open '", tmp, "'");
                    return;
                }
                os << payload;
            }
            if (std::rename(tmp.c_str(), config_.metricsOut.c_str()) != 0)
                SC_WARN_ONCE("serve: rename to '", config_.metricsOut,
                             "' failed");
        }
    }
}

} // namespace solarcore::serve
