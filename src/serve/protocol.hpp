/**
 * @file
 * Wire protocol of the solarcore_serve planning daemon.
 *
 * Transport: length-prefixed frames ([u32 length][payload], the
 * util/pipe_channel framing) over a local AF_UNIX stream socket.
 * Payloads are native-endian packed fields -- same-machine IPC, the
 * same contract as the campaign worker pipes; doubles travel as raw
 * bits so a cached answer replays the simulated bytes exactly.
 *
 * One request frame ('Q') carries a planning query: the scenario axes
 * (sites x months x policies x workloads x seeds), the shared
 * simulation knobs, a fleet multiplier (nodes per expanded unit), the
 * economic context, and a per-request deadline. One reply frame ('R')
 * carries a typed status plus -- on Ok -- the fleet-aggregated
 * energy/carbon/payback answer. Every reply echoes the client's
 * request id; a server that cannot even parse the id echoes 0.
 *
 * Robustness contract: decodeQuery()/decodeReply() never trust a
 * length field, never allocate towards unvalidated sizes, reject
 * trailing bytes, and validate every enum token and numeric range, so
 * a fuzzer can hand them arbitrary bytes. The deterministic part of
 * an Ok reply (everything after the request id) is a pure function of
 * the query and the server's resolved PV kernel -- the LRU result
 * cache stores exactly those bytes.
 */

#ifndef SOLARCORE_SERVE_PROTOCOL_HPP
#define SOLARCORE_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "campaign/scenario.hpp"
#include "core/carbon.hpp"

namespace solarcore::serve {

/**
 * Base wire version; unknown versions get BadRequest. Replies are
 * always encoded at this version: the deterministic reply bytes (and
 * with them the result-cache contract) are independent of whether the
 * client asked for tracing.
 */
inline constexpr std::uint32_t kProtocolVersion = 1;

/**
 * Query-frame version that carries a trace id (u64, directly after
 * the request id). encodeQuery() only emits it when a trace id is
 * set, so an untraced client still produces byte-identical version-1
 * frames and a pre-trace server still understands it; decodeQuery()
 * accepts both versions, so a pre-trace client frame is still served.
 */
inline constexpr std::uint32_t kProtocolVersionTraced = 2;

/** Hard cap on any frame the server will buffer for one client. */
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/** Hard cap on each axis list in a query. */
inline constexpr std::size_t kMaxAxisEntries = 4096;

/** Frame tags (first payload byte). */
inline constexpr std::uint8_t kFrameQuery = 'Q';
inline constexpr std::uint8_t kFrameReply = 'R';

/** Typed outcome of one request. */
enum class ReplyStatus : std::uint8_t
{
    Ok = 0,
    ShedCapacity = 1, //!< admission refused: request queue full
    ShedDeadline = 2, //!< admission refused: grid too large for the
                      //!< deadline at the current per-unit estimate
    Expired = 3,      //!< deadline passed before the answer was ready
    BadRequest = 4,   //!< malformed frame / invalid field values
    ServerError = 5,  //!< internal failure
    ShuttingDown = 6, //!< server stopped with the request queued
};

/** Human token of a status ("ok", "shed-capacity", ...). */
const char *replyStatusName(ReplyStatus status);

/** One planning query. */
struct PlanQuery
{
    std::uint64_t requestId = 0;   //!< echoed verbatim in the reply
    /** 0 = untraced (frame encodes as version 1). Non-zero asks the
     *  server to record spans for this request; never part of the
     *  cache key or the reply bytes. */
    std::uint64_t traceId = 0;
    std::uint32_t deadlineMillis = 0; //!< 0 = no deadline
    std::uint32_t nodesPerUnit = 1;   //!< fleet nodes per expanded unit
    /** Axes + shared knobs; pvKernel is server-side and not on the
     *  wire. */
    campaign::ScenarioGrid grid;
    core::GridContext econ;        //!< fleet-level economic context
};

/** The deterministic Ok answer. */
struct PlanAnswer
{
    std::uint32_t unitCount = 0;   //!< expanded grid size
    std::uint32_t nodesPerUnit = 1;
    double nodes = 0.0;            //!< unitCount * nodesPerUnit
    // Fleet energy totals (node-count weighted, one day).
    double mppEnergyWh = 0.0;
    double solarEnergyWh = 0.0;
    double gridEnergyWh = 0.0;
    double chipEnergyWh = 0.0;
    double solarInstructions = 0.0;
    double totalInstructions = 0.0;
    double fleetUtilization = 0.0;
    double greenFraction = 0.0;
    // Carbon/cost projection of those totals (core::assessEnergy).
    double solarKwhPerDay = 0.0;
    double gridKwhPerDay = 0.0;
    double co2AvoidedKgPerYear = 0.0;
    double savingsUsdPerYear = 0.0;
    double panelPaybackYears = 0.0;
    double batteryAvoidedUsdPerYear = 0.0;
};

/** One reply frame. */
struct PlanReply
{
    std::uint64_t requestId = 0;
    ReplyStatus status = ReplyStatus::Ok;
    std::string message;  //!< non-Ok diagnostics (bounded, one line)
    PlanAnswer answer;    //!< meaningful only when status == Ok
};

/** Encode @p query as one frame payload (tag included). */
std::string encodeQuery(const PlanQuery &query);

/**
 * Decode a query frame. On failure returns false with a one-line
 * @p error; @p out.requestId is still filled when the prefix up to
 * the id parsed, so the server can address its BadRequest reply.
 */
bool decodeQuery(std::string_view frame, PlanQuery &out,
                 std::string &error);

/**
 * Encode @p reply as one frame payload. The bytes after the request
 * id are deterministic for a given (query, resolved kernel); see
 * encodeAnswerBody().
 */
std::string encodeReply(const PlanReply &reply);

/** Decode a reply frame (client side). */
bool decodeReply(std::string_view frame, PlanReply &out,
                 std::string &error);

/**
 * The deterministic tail of an Ok reply -- status byte, empty
 * message, answer fields. The server's LRU result cache stores these
 * bytes; encodeReplyFromBody() prepends tag/version/request id.
 */
std::string encodeAnswerBody(const PlanAnswer &answer);

/** Assemble a full reply frame from a cached answer body. */
std::string encodeReplyFromBody(std::uint64_t request_id,
                                std::string_view body);

/**
 * Clear-text cache-key material of @p query under @p resolved_kernel:
 * the campaign grid signature (which names the kernel), the fleet
 * multiplier, the economic context and the serve schema version.
 * Everything that can change the answer, nothing that cannot.
 */
std::string queryKeyMaterial(const PlanQuery &query,
                             std::string_view resolved_kernel);

/**
 * Validate the semantic ranges of a decoded query (non-empty axes
 * within caps, positive dt/period, finite knobs, non-negative
 * economics). @return empty string when valid, else the complaint.
 */
std::string validateQuery(const PlanQuery &query);

/**
 * Write @p payload as one [u32 length][payload] frame to socket
 * @p fd, suppressing SIGPIPE and retrying EINTR/EAGAIN (poll-waiting
 * on a full send buffer). @return false on a hard write error or on
 * non-POSIX platforms.
 */
bool sendFrame(int fd, std::string_view payload);

} // namespace solarcore::serve

#endif // SOLARCORE_SERVE_PROTOCOL_HPP
