/**
 * @file
 * In-memory LRU cache of serve answers, keyed by the FNV-1a hash of
 * the query's clear-text key material (queryKeyMaterial()).
 *
 * This is the hot layer above the campaign's persistent on-disk
 * UnitResultCache: the disk cache memoizes *units* across processes,
 * this cache memoizes whole *query answers* within one server. Each
 * entry stores the full key material alongside the encoded answer
 * body, so a hash collision reads as a miss instead of serving the
 * wrong plan -- the same honesty rule as the disk cache.
 *
 * Not thread-safe; the server guards it with its own mutex.
 */

#ifndef SOLARCORE_SERVE_RESULT_CACHE_HPP
#define SOLARCORE_SERVE_RESULT_CACHE_HPP

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

namespace solarcore::serve {

class ResultCache
{
public:
    /** @p capacity 0 disables the cache (every lookup misses). */
    explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

    /**
     * Look up @p material. On hit copies the stored answer body into
     * @p body, promotes the entry to most-recently-used and returns
     * true. A hash collision (same hash, different material) counts
     * as a miss.
     */
    bool lookup(const std::string &material, std::string &body);

    /**
     * Insert @p body under @p material, evicting least-recently-used
     * entries beyond capacity. Re-inserting an existing key refreshes
     * its recency and overwrites the body.
     */
    void insert(const std::string &material, std::string_view body);

    std::size_t size() const { return entries_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t insertions() const { return insertions_; }
    std::uint64_t evictions() const { return evictions_; }

private:
    struct Entry
    {
        std::string material; //!< full key text (collision check)
        std::string body;     //!< encoded deterministic answer body
    };

    /// LRU list, most-recent first; map points into it by key hash.
    std::list<std::pair<std::uint64_t, Entry>> lru_;
    std::unordered_map<std::uint64_t, decltype(lru_)::iterator> entries_;
    std::size_t capacity_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t insertions_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace solarcore::serve

#endif // SOLARCORE_SERVE_RESULT_CACHE_HPP
