/**
 * @file
 * The solarcore_serve planning daemon core.
 *
 * A Server binds an AF_UNIX stream socket and answers PlanQuery
 * frames (src/serve/protocol.hpp) with fleet energy/carbon/payback
 * projections computed by the campaign unit simulator. The moving
 * parts:
 *
 *  - one IO thread multiplexing accept + per-connection reads with
 *    poll(); every connection gets a FrameReader capped at
 *    kMaxFrameBytes, so an absurd declared length drops the client
 *    instead of ballooning the heap;
 *  - a bounded request queue feeding N worker threads. Admission is
 *    load-shedding, never unbounded queueing: a full queue answers
 *    ShedCapacity immediately, and a deadline the server predicts it
 *    cannot meet (EWMA of measured per-unit service time x grid
 *    size) answers ShedDeadline without simulating anything. Workers
 *    re-check the deadline at dequeue and between units and answer
 *    Expired the moment it lapses;
 *  - two cache layers: an in-memory LRU of whole query answers
 *    (ResultCache, keyed by the clear-text query material) over the
 *    campaign's persistent on-disk unit cache (shared with
 *    solarcore_campaign runs, salt "audit=off");
 *  - observability: lock-free counters materialized into a stats
 *    registry, queue/service latency through the self-profiler
 *    (p50/p99 from its log2 histograms), and a throttled publisher
 *    fanning one snapshot out to status.json (atomic rename,
 *    schema solarcore-serve-status-v1), an OpenMetrics snapshot file
 *    and the embedded /metrics HTTP endpoint -- the same surfaces
 *    solarcore_top and CI lint already speak.
 *
 * Determinism: a request executes on exactly one worker, units in
 * index order, and the reply body is encoded once and cached, so
 * identical queries produce byte-identical answer payloads at any
 * worker count and any cache state.
 */

#ifndef SOLARCORE_SERVE_SERVER_HPP
#define SOLARCORE_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/unit_cache.hpp"
#include "obs/metrics_export.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/stats_registry.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "util/pipe_channel.hpp"

namespace solarcore::core {
struct SimWorkspace;
}

namespace solarcore::serve {

/** True when AF_UNIX socket serving is available on this platform. */
bool serveSupported();

/** Everything a Server instance is configured with. */
struct ServeConfig
{
    std::string socketPath;        //!< AF_UNIX path (required)
    int workers = 2;               //!< planner worker threads
    std::size_t maxQueueDepth = 64;   //!< admission bound [requests]
    std::size_t resultCacheCap = 1024; //!< answer LRU [entries]; 0 off
    std::size_t maxUnitsPerQuery = 4096; //!< grid-size cap per query
    std::string unitCacheDir;      //!< persistent unit cache; "" off
    std::size_t unitCacheCap = 4096; //!< unit-cache LRU cap [files]
    std::string pvKernel = "auto"; //!< "auto"/"scalar"/"portable"/"avx2"
    /**
     * Seed of the per-unit service-time estimate [us] used by the
     * ShedDeadline admission test. 0 starts with no estimate (the
     * first requests are always admitted and the EWMA learns from
     * them); tests pin it high to make shedding deterministic.
     */
    double estimateInitUnitMicros = 0.0;
    std::string statusPath;        //!< status.json path; "" disables
    std::string metricsOut;        //!< OpenMetrics snapshot; "" off
    int metricsPort = -1;          //!< /metrics HTTP; -1 off, 0 ephemeral
    double minPublishSeconds = 0.25; //!< publisher throttle
    bool verbose = false;          //!< per-request stderr lines
    /**
     * Request tracing. Tracing is enabled when either export path is
     * set; otherwise every span hook degrades to one null check and
     * the reply bytes are untouched (the <1% bench gate covers this).
     * With tracing on, every request stages spans speculatively and
     * the keep/discard decision happens at request end, which is what
     * makes the tail bias (always keep slow/shed/expired/error
     * requests) free; head sampling keeps every Nth request on top,
     * and a client-stamped trace id is always kept.
     */
    std::string traceOut;          //!< span JSONL path; "" off
    std::string tracePerfettoOut;  //!< Chrome/Perfetto path; "" off
    std::uint64_t traceSample = 0; //!< head-sample every Nth request;
                                   //!< 0 = only client-traced + tail
    std::size_t traceBufferSpans = 1u << 16; //!< span sink capacity
    double slowMillis = 250.0;     //!< queue+service ms deemed "slow"
    std::size_t slowLogCap = 16;   //!< slow-query log entries kept
};

/** One entry of the bounded slow-query log (status.json). */
struct SlowQueryEntry
{
    std::uint64_t requestId = 0;
    std::uint64_t traceId = 0; //!< 0 = trace not kept / tracing off
    std::string status;        //!< replyStatusName() token
    double queueMs = 0.0;
    double serviceMs = 0.0;
    std::uint32_t units = 0;
};

/** One coherent view of server health (status.json / tests). */
struct ServeSnapshot
{
    double uptimeSeconds = 0.0;
    std::size_t workers = 0;
    std::size_t queueDepth = 0;
    std::size_t inflight = 0;
    std::uint64_t connections = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t protocolErrors = 0;
    std::uint64_t requests = 0;
    std::uint64_t ok = 0;
    std::uint64_t shedCapacity = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t expired = 0;
    std::uint64_t badRequest = 0;
    std::uint64_t serverError = 0;
    std::uint64_t shuttingDown = 0;
    std::uint64_t unitsSimulated = 0;
    std::uint64_t unitsFromUnitCache = 0;
    // In-memory answer cache.
    std::size_t resultCacheSize = 0;
    std::uint64_t resultCacheHits = 0;
    std::uint64_t resultCacheMisses = 0;
    std::uint64_t resultCacheInsertions = 0;
    std::uint64_t resultCacheEvictions = 0;
    // Persistent unit cache (when enabled).
    bool unitCacheEnabled = false;
    std::size_t unitCacheSize = 0;
    campaign::UnitCacheCounters unitCache;
    // Latency quantiles from the self-profiler [ms].
    double queueP50Ms = 0.0;
    double queueP99Ms = 0.0;
    double serviceP50Ms = 0.0;
    double serviceP99Ms = 0.0;
    double estimateUnitMicros = 0.0;
    // Request tracing (spans) + the always-on slow-query log.
    bool tracingEnabled = false;
    obs::SpanSinkCounters trace;
    std::uint64_t tracesClientStamped = 0;
    std::uint64_t tracesHeadSampled = 0;
    std::uint64_t tracesTailKept = 0;
    std::vector<SlowQueryEntry> slowQueries; //!< oldest first
};

/** The daemon (see file header). */
class Server
{
  public:
    explicit Server(ServeConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Resolve the PV kernel, open the caches, bind the socket and
     * start the IO + worker threads. @return false (with a warning)
     * when the socket cannot be bound or the kernel token is invalid.
     */
    bool start();

    /**
     * Stop accepting, answer every queued request with ShuttingDown,
     * join all threads, close and unlink the socket, and force a
     * final publication. Idempotent.
     */
    void stop();

    bool running() const { return running_.load(); }

    /** The resolved PV kernel name ("scalar"/"portable"/"avx2"). */
    const std::string &resolvedKernel() const { return resolvedKernel_; }

    /** The bound /metrics port (0 when not serving HTTP). */
    int metricsPort() const { return endpoint_.port(); }

    /** The current health view. */
    ServeSnapshot snapshot() const;

    /** Force an immediate unthrottled publication (tests). */
    void publishNow();

    /**
     * Materialize the current counters into the stats registry and
     * return its flattened (name, value) rows -- the registry surface
     * the shed/cache counters are exported through.
     */
    std::vector<std::pair<std::string, double>> statsRows();

    /** Render @p snap as the status.json document. */
    static std::string renderStatusJson(const ServeSnapshot &snap,
                                        const std::string &socket_path,
                                        const std::string &kernel);

  private:
    struct Conn;
    struct Request;

    /** Per-bin latency histogram with one exemplar slot per bucket
     *  (bounds in latencyBoundsMs(); last slot = +Inf). */
    struct LatencyHist
    {
        std::vector<std::uint64_t> counts;
        std::vector<obs::MetricExemplar> exemplars;
        std::uint64_t total = 0;
        double sumMs = 0.0;
    };

    static void addLatency(LatencyHist &hist, double ms,
                           std::uint64_t trace_id);

    void ioLoop();
    void workerLoop(int worker_index);
    void acceptClients();
    bool drainConn(const std::shared_ptr<Conn> &conn);
    void handleFrame(const std::shared_ptr<Conn> &conn,
                     const std::string &frame);
    void replyError(const std::shared_ptr<Conn> &conn,
                    std::uint64_t request_id, ReplyStatus status,
                    const std::string &message);
    bool executeQueryWith(const Request &req, std::string &body,
                          bool &expired,
                          core::SimWorkspace &workspace);
    void recordLatency(const char *scope, std::int64_t ns);
    /**
     * End-of-request bookkeeping shared by every outcome path: closes
     * and commits/discards the staged trace (client-stamped and
     * head-sampled traces always commit; slow/shed/expired/error ones
     * tail-commit), feeds the exemplar-bearing latency histograms
     * (negative ms = stage never ran), and appends to the bounded
     * slow-query log. @p units is the expanded grid size when known.
     */
    void finishRequest(Request &req, ReplyStatus status,
                       double queue_ms, double service_ms,
                       std::uint32_t units);
    void fillRegistry(const ServeSnapshot &snap);
    std::string renderMetrics(const ServeSnapshot &snap);
    void publish(bool force);
    double estimateUnitMicros() const;
    void updateEstimate(double measured_unit_micros);

    ServeConfig config_;
    std::string resolvedKernel_;
    std::atomic<bool> running_{false};
    bool started_ = false;

    int listenFd_ = -1;
    std::thread ioThread_;
    std::vector<std::shared_ptr<Conn>> conns_; //!< IO thread only

    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Request> queue_;
    std::vector<std::thread> workers_;
    std::atomic<std::size_t> inflight_{0};

    // Monotonic counters (lock-free increments on the hot path;
    // materialized into stats_ at publish time).
    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> disconnects_{0};
    std::atomic<std::uint64_t> protocolErrors_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> ok_{0};
    std::atomic<std::uint64_t> shedCapacity_{0};
    std::atomic<std::uint64_t> shedDeadline_{0};
    std::atomic<std::uint64_t> expired_{0};
    std::atomic<std::uint64_t> badRequest_{0};
    std::atomic<std::uint64_t> serverError_{0};
    std::atomic<std::uint64_t> shuttingDown_{0};
    std::atomic<std::uint64_t> unitsSimulated_{0};
    std::atomic<std::uint64_t> unitsFromUnitCache_{0};

    mutable std::mutex resultCacheMutex_;
    ResultCache resultCache_;
    std::unique_ptr<campaign::UnitResultCache> unitCache_;

    mutable std::mutex profMutex_;
    obs::Profiler prof_;

    mutable std::mutex estimateMutex_;
    double unitMicrosEwma_ = 0.0;

    // Tracing: the process-wide span sink plus sampling counters.
    bool tracingEnabled_ = false;
    obs::SpanSink spanSink_;
    std::atomic<std::uint64_t> traceSeq_{0};
    std::atomic<std::uint64_t> tracesClientStamped_{0};
    std::atomic<std::uint64_t> tracesHeadSampled_{0};
    std::atomic<std::uint64_t> tracesTailKept_{0};

    // Slow-query log + latency histograms (always on; cheap:
    // once-per-request under their own mutex).
    mutable std::mutex slowMutex_;
    std::deque<SlowQueryEntry> slowQueries_;
    mutable std::mutex histMutex_;
    LatencyHist queueHist_;
    LatencyHist serviceHist_;

    std::mutex publishMutex_; //!< also guards stats_
    obs::StatsRegistry stats_;
    obs::MetricsEndpoint endpoint_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastPublish_;
    bool published_ = false;
};

} // namespace solarcore::serve

#endif // SOLARCORE_SERVE_SERVER_HPP
