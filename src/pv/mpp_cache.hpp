/**
 * @file
 * Environment-keyed memoization of maximum-power-point solves.
 *
 * The figure sweeps replay the same irradiance/temperature trace for
 * many workloads and budgets, so the per-timestep findMpp calls repeat
 * identical (G, T) environments tens of times. MppCache memoizes the
 * analytic MPP per (optionally quantized) environment key; MppGrid
 * additionally precomputes a small bilinear (G, T) grid whose
 * interpolant, polished by the cell's analytic Newton refinement,
 * answers arbitrary conditions without a full solve.
 */

#ifndef SOLARCORE_PV_MPP_CACHE_HPP
#define SOLARCORE_PV_MPP_CACHE_HPP

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "pv/mpp.hpp"

namespace solarcore::pv {

/**
 * Memoized MPP solver for one fixed array arrangement.
 *
 * Keys are the raw bit patterns of (G, T) by default (hits only on
 * exactly repeated environments -- no accuracy change whatsoever), or
 * quantized to (g_quantum, t_quantum) buckets when a controlled
 * accuracy/hit-rate trade is wanted. Not thread-safe; use one cache
 * per worker (the sweep driver does).
 */
class MppCache
{
  public:
    /** Hit/miss counters for tests, benchmarks and the stats registry. */
    struct Stats
    {
        std::size_t hits = 0;
        std::size_t misses = 0;

        std::size_t lookups() const { return hits + misses; }

        /** Hit fraction in [0, 1]; 0 before the first lookup. */
        double
        hitRate() const
        {
            const std::size_t n = lookups();
            return n ? static_cast<double>(hits) /
                    static_cast<double>(n)
                     : 0.0;
        }
    };

    MppCache(const PvModule &module, int modules_series,
             int modules_parallel, double g_quantum = 0.0,
             double t_quantum = 0.0);

    /** The MPP at @p env: memo lookup, analytic solve on miss. */
    MppResult mpp(const Environment &env);

    /**
     * Batched lookup: out[k] = the MPP at envs[k], with every miss in
     * the batch gathered and solved through one findMppBatch call on
     * the selected lane kernel. Results and hit/miss counters are
     * sequential-equivalent: identical to calling mpp() per element in
     * order (first occurrence of a new key counts a miss, repeats
     * count hits, dark environments bypass the memo and the counters).
     * Under the Scalar kernel or the Newton oracle this literally is
     * the per-element loop, preserving the legacy measurement path.
     */
    void lookupBatch(std::span<const Environment> envs,
                     std::span<MppResult> out);

    /** True if the cache was built for this module and arrangement. */
    bool compatibleWith(const PvModule &module, int modules_series,
                        int modules_parallel) const;

    void clear();
    std::size_t size() const { return memo_.size(); }
    const Stats &stats() const { return stats_; }

  private:
    struct Key
    {
        std::int64_t g = 0;
        std::int64_t t = 0;

        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            // splitmix-style mix of both halves; equality is exact, so
            // collisions only cost a probe, never a wrong result.
            std::uint64_t h = static_cast<std::uint64_t>(k.g);
            h ^= static_cast<std::uint64_t>(k.t) + 0x9e3779b97f4a7c15ULL +
                (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ULL);
        }
    };

    Key keyFor(const Environment &env) const;

    PvArray array_;
    double gQuantum_;
    double tQuantum_;
    std::unordered_map<Key, MppResult, KeyHash> memo_;
    Stats stats_;
};

/**
 * Precomputed bilinear MPP surface over a (G, T) rectangle.
 *
 * interpolate() answers in a handful of flops with the bilinear error
 * of the grid pitch; refined() polishes the interpolated voltage with
 * the cell's analytic Newton steps, recovering the exact MPP at about
 * a third of the cost of a cold solve. Immutable after construction,
 * hence freely shared across threads.
 */
class MppGrid
{
  public:
    MppGrid(const PvModule &module, int modules_series,
            int modules_parallel, double g_min, double g_max, int g_steps,
            double t_min, double t_max, int t_steps);

    /** Bilinear interpolation of the precomputed MPP surface. */
    MppResult interpolate(const Environment &env) const;

    /** Interpolated voltage polished to the exact MPP analytically. */
    MppResult refined(const Environment &env) const;

    int gSteps() const { return gSteps_; }
    int tSteps() const { return tSteps_; }

  private:
    MppResult at(int gi, int ti) const;

    PvModule module_;
    int modulesSeries_;
    int modulesParallel_;
    double gMin_, gMax_;
    double tMin_, tMax_;
    int gSteps_, tSteps_;
    std::vector<MppResult> table_; //!< row-major [g][t]
};

} // namespace solarcore::pv

#endif // SOLARCORE_PV_MPP_CACHE_HPP
