#include "cell.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::pv {

namespace {

constexpr double kBoltzmann = 1.380649e-23; // [J/K]
constexpr double kElectron = 1.602176634e-19; // [C]

} // namespace

SolarCell::SolarCell(const CellParams &params) : params_(params)
{
    SC_ASSERT(params_.iscRef > 0 && params_.vocRef > 0,
              "SolarCell: datasheet reference values must be positive");
    SC_ASSERT(params_.idealityN >= 1.0 && params_.idealityN <= 2.0,
              "SolarCell: diode ideality out of physical range");
    // Calibrate the dark saturation current so that the open-circuit
    // condition at STC reproduces vocRef exactly:
    //   Iph = I0 * (exp(Voc / Vt) - 1)   (I = 0, Rs drops out)
    const double vt = thermalVoltage(kStc.cellTempC);
    i0Ref_ = params_.iscRef / std::expm1(params_.vocRef / vt);
    SC_ASSERT(i0Ref_ > 0, "SolarCell: saturation current calibration failed");
}

double
SolarCell::thermalVoltage(double cell_temp_c) const
{
    return params_.idealityN * kBoltzmann * kelvin(cell_temp_c) / kElectron;
}

double
SolarCell::photoCurrent(const Environment &env) const
{
    const double temp_term =
        1.0 + params_.alphaIsc * (env.cellTempC - kStc.cellTempC);
    return params_.iscRef * (env.irradiance / kStc.irradiance) * temp_term;
}

double
SolarCell::saturationCurrent(double cell_temp_c) const
{
    // I0(T) = I0_ref (T/Tref)^3 exp( (Eg/(n k/q)) (1/Tref - 1/T) )
    const double t = kelvin(cell_temp_c);
    const double t_ref = kelvin(kStc.cellTempC);
    const double eg_over_nk =
        params_.bandgapEv * kElectron / (params_.idealityN * kBoltzmann);
    return i0Ref_ * std::pow(t / t_ref, 3.0) *
        std::exp(eg_over_nk * (1.0 / t_ref - 1.0 / t));
}

double
SolarCell::currentAt(double v, const Environment &env) const
{
    if (env.irradiance <= 0.0) {
        // Dark cell: pure diode characteristic, I = -Id(v).
        const double vt = thermalVoltage(env.cellTempC);
        return -saturationCurrent(env.cellTempC) * std::expm1(v / vt);
    }

    const double iph = photoCurrent(env);
    const double i0 = saturationCurrent(env.cellTempC);
    const double vt = thermalVoltage(env.cellTempC);
    const double rs = params_.seriesRes;

    auto f = [&](double i) {
        return iph - i0 * std::expm1((v + i * rs) / vt) - i;
    };
    auto df = [&](double i) {
        return -i0 * (rs / vt) * std::exp((v + i * rs) / vt) - 1.0;
    };

    // I is bracketed by the reverse-bias diode floor and Iph.
    const double lo = -i0 * 10.0 - 1.0;
    const double hi = iph;
    const auto res = newton(f, df, iph * 0.9, lo, hi, 1e-12, 100);
    return res.x;
}

double
SolarCell::openCircuitVoltage(const Environment &env) const
{
    if (env.irradiance <= 0.0)
        return 0.0;
    const double iph = photoCurrent(env);
    const double i0 = saturationCurrent(env.cellTempC);
    const double vt = thermalVoltage(env.cellTempC);
    // I = 0 => Voc = Vt * ln(1 + Iph / I0); Rs drops out at zero current.
    return vt * std::log1p(iph / i0);
}

double
SolarCell::shortCircuitCurrent(const Environment &env) const
{
    return currentAt(0.0, env);
}

} // namespace solarcore::pv
