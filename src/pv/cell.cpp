#include "cell.hpp"

#include <atomic>
#include <cmath>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::pv {

namespace {

constexpr double kBoltzmann = 1.380649e-23; // [J/K]
constexpr double kElectron = 1.602176634e-19; // [C]

std::atomic<bool> g_newton_iv_solve{false};

} // namespace

void
setNewtonIvSolve(bool enabled)
{
    g_newton_iv_solve.store(enabled, std::memory_order_relaxed);
}

bool
newtonIvSolve()
{
    return g_newton_iv_solve.load(std::memory_order_relaxed);
}

SolarCell::SolarCell(const CellParams &params) : params_(params)
{
    SC_ASSERT(params_.iscRef > 0 && params_.vocRef > 0,
              "SolarCell: datasheet reference values must be positive");
    SC_ASSERT(params_.idealityN >= 1.0 && params_.idealityN <= 2.0,
              "SolarCell: diode ideality out of physical range");
    // Calibrate the dark saturation current so that the open-circuit
    // condition at STC reproduces vocRef exactly:
    //   Iph = I0 * (exp(Voc / Vt) - 1)   (I = 0, Rs drops out)
    const double vt = thermalVoltage(kStc.cellTempC);
    i0Ref_ = params_.iscRef / std::expm1(params_.vocRef / vt);
    SC_ASSERT(i0Ref_ > 0, "SolarCell: saturation current calibration failed");
}

double
SolarCell::thermalVoltage(double cell_temp_c) const
{
    return params_.idealityN * kBoltzmann * kelvin(cell_temp_c) / kElectron;
}

double
SolarCell::photoCurrent(const Environment &env) const
{
    const double temp_term =
        1.0 + params_.alphaIsc * (env.cellTempC - kStc.cellTempC);
    return params_.iscRef * (env.irradiance / kStc.irradiance) * temp_term;
}

double
SolarCell::saturationCurrent(double cell_temp_c) const
{
    // I0(T) = I0_ref (T/Tref)^3 exp( (Eg/(n k/q)) (1/Tref - 1/T) )
    const double t = kelvin(cell_temp_c);
    const double t_ref = kelvin(kStc.cellTempC);
    const double eg_over_nk =
        params_.bandgapEv * kElectron / (params_.idealityN * kBoltzmann);
    return i0Ref_ * std::pow(t / t_ref, 3.0) *
        std::exp(eg_over_nk * (1.0 / t_ref - 1.0 / t));
}

double
SolarCell::currentAt(double v, const Environment &env) const
{
    if (env.irradiance <= 0.0) {
        // Dark cell: pure diode characteristic, I = -Id(v).
        const double vt = thermalVoltage(env.cellTempC);
        return -saturationCurrent(env.cellTempC) * std::expm1(v / vt);
    }
    if (newtonIvSolve())
        return currentAtNewton(v, env);

    const double iph = photoCurrent(env);
    const double i0 = saturationCurrent(env.cellTempC);
    const double vt = thermalVoltage(env.cellTempC);
    const double rs = params_.seriesRes;
    if (rs <= 0.0)
        return iph - i0 * std::expm1(v / vt); // explicit without Rs

    // Closed form: with A = Iph + I0 and
    //   theta = (I0 Rs / Vt) exp((V + A Rs) / Vt),
    // the implicit equation collapses to I = A - (Vt/Rs) W(theta).
    // theta overflows double for large forward bias, so W is evaluated
    // from log(theta) directly.
    const double a = iph + i0;
    const double log_theta =
        std::log(i0 * rs / vt) + (v + a * rs) / vt;
    const double w = lambertW0exp(log_theta);
    return a - w * vt / rs;
}

double
SolarCell::currentAtNewton(double v, const Environment &env) const
{
    if (env.irradiance <= 0.0) {
        const double vt = thermalVoltage(env.cellTempC);
        return -saturationCurrent(env.cellTempC) * std::expm1(v / vt);
    }

    const double iph = photoCurrent(env);
    const double i0 = saturationCurrent(env.cellTempC);
    const double vt = thermalVoltage(env.cellTempC);
    const double rs = params_.seriesRes;

    auto f = [&](double i) {
        return iph - i0 * std::expm1((v + i * rs) / vt) - i;
    };
    auto df = [&](double i) {
        return -i0 * (rs / vt) * std::exp((v + i * rs) / vt) - 1.0;
    };

    // I is bracketed by the reverse-bias diode floor and Iph.
    const double lo = -i0 * 10.0 - 1.0;
    const double hi = iph;
    const auto res = newton(f, df, iph * 0.9, lo, hi, 1e-12, 100);
    return res.x;
}

double
SolarCell::currentSlopeAt(double v, const Environment &env) const
{
    const double vt = thermalVoltage(env.cellTempC);
    const double i0 = saturationCurrent(env.cellTempC);
    const double rs = params_.seriesRes;
    if (env.irradiance <= 0.0 || rs <= 0.0) {
        // dI/dV = -(I0/Vt) exp(V/Vt), the bare diode slope.
        return -i0 / vt * std::exp(v / vt);
    }
    const double a = photoCurrent(env) + i0;
    const double log_theta =
        std::log(i0 * rs / vt) + (v + a * rs) / vt;
    const double w = lambertW0exp(log_theta);
    return -w / (rs * (1.0 + w));
}

double
SolarCell::mppVoltage(const Environment &env) const
{
    if (env.irradiance <= 0.0)
        return 0.0;

    const double iph = photoCurrent(env);
    const double i0 = saturationCurrent(env.cellTempC);
    const double vt = thermalVoltage(env.cellTempC);

    // Exact for Rs = 0: dP/dV = 0 gives (1 + V/Vt) e^(1 + V/Vt)
    // = e (1 + Iph/I0), i.e. Vmp = Vt (W(e (1 + Iph/I0)) - 1).
    const double v0 = vt * (lambertW0exp(1.0 + std::log1p(iph / i0)) - 1.0);
    if (params_.seriesRes <= 0.0)
        return v0;

    // Rs > 0 shifts the terminal-voltage optimum left by roughly
    // Imp * Rs; the seed lands close enough that a handful of
    // safeguarded Newton steps on dP/dV reach machine precision.
    return refineMppVoltage(v0 - iph * params_.seriesRes, env, 20);
}

double
SolarCell::refineMppVoltage(double v_seed, const Environment &env,
                            int iters) const
{
    if (env.irradiance <= 0.0)
        return 0.0;

    double lo = 0.0;
    double hi = openCircuitVoltage(env);
    double v = clamp(v_seed, lo, hi);
    const double vt = thermalVoltage(env.cellTempC);
    const double i0 = saturationCurrent(env.cellTempC);
    const double rs = params_.seriesRes;
    const double a = photoCurrent(env) + i0;

    for (int it = 0; it < iters; ++it) {
        // g(V) = dP/dV = I + V I' and g'(V) = 2 I' + V I'', all in
        // closed form; g is strictly decreasing on [0, Voc].
        double i, di, d2i;
        if (rs <= 0.0) {
            const double e = i0 * std::exp(v / vt);
            i = a - e; // == Iph - I0 expm1(v/vt)
            di = -e / vt;
            d2i = -e / (vt * vt);
        } else {
            const double log_theta =
                std::log(i0 * rs / vt) + (v + a * rs) / vt;
            const double w = lambertW0exp(log_theta);
            i = a - w * vt / rs;
            di = -w / (rs * (1.0 + w));
            const double opw = 1.0 + w;
            d2i = -w / (rs * vt * opw * opw * opw);
        }
        const double g = i + v * di;
        const double dg = 2.0 * di + v * d2i;

        // Maintain the bracket: g > 0 left of the MPP, < 0 right of it.
        if (g > 0.0)
            lo = v;
        else
            hi = v;

        double next = dg != 0.0 ? v - g / dg : 0.5 * (lo + hi);
        // Converged: a vanishing Newton step means v is the root. Check
        // before the bracket rejection below, which would otherwise
        // mistake the on-the-boundary step for an escape and bisect
        // away from the already-converged point.
        if (std::abs(next - v) <= 1e-15 * (1.0 + std::abs(v)))
            return v;
        if (next <= lo || next >= hi)
            next = 0.5 * (lo + hi);
        v = next;
    }
    return v;
}

double
SolarCell::openCircuitVoltage(const Environment &env) const
{
    if (env.irradiance <= 0.0)
        return 0.0;
    const double iph = photoCurrent(env);
    const double i0 = saturationCurrent(env.cellTempC);
    const double vt = thermalVoltage(env.cellTempC);
    // I = 0 => Voc = Vt * ln(1 + Iph / I0); Rs drops out at zero current.
    return vt * std::log1p(iph / i0);
}

double
SolarCell::shortCircuitCurrent(const Environment &env) const
{
    return currentAt(0.0, env);
}

} // namespace solarcore::pv
