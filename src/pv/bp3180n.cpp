#include "bp3180n.hpp"

#include "pv/mpp.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::pv {

ModuleDatasheet
bp3180nDatasheet()
{
    return ModuleDatasheet{};
}

namespace {

/** STC maximum power of a module built with per-cell resistance rs. */
double
stcMaxPower(const ModuleDatasheet &sheet, double rs)
{
    CellParams cp;
    cp.iscRef = sheet.iscStc / sheet.stringsParallel;
    cp.vocRef = sheet.vocStc / sheet.cellsSeries;
    cp.alphaIsc = sheet.alphaIscPerK;
    cp.idealityN = sheet.idealityN;
    cp.seriesRes = rs;

    const SolarCell cell(cp);
    const PvModule module(cell, sheet.cellsSeries, sheet.stringsParallel,
                          sheet.noctC);
    const PvArray array(module, 1, 1, kStc);
    return findMpp(array).power;
}

} // namespace

PvModule
buildCalibratedModule(const ModuleDatasheet &sheet)
{
    // Pmax(Rs) is monotone decreasing; bracket Rs between the ideal
    // cell (upper power bound) and a heavily resistive one.
    const double rs_lo = 0.0;
    const double rs_hi = 0.05; // [ohm per cell]

    const double p_ideal = stcMaxPower(sheet, rs_lo);
    if (p_ideal < sheet.maxPower) {
        SC_FATAL("module datasheet unreachable: ideal-cell Pmax ", p_ideal,
                 " W below rated ", sheet.maxPower, " W");
    }

    auto mismatch = [&](double rs) {
        return stcMaxPower(sheet, rs) - sheet.maxPower;
    };
    const auto fit = bisect(mismatch, rs_lo, rs_hi, 1e-8);
    if (!fit.converged)
        SC_WARN("module Rs calibration did not converge; using ", fit.x);

    CellParams cp;
    cp.iscRef = sheet.iscStc / sheet.stringsParallel;
    cp.vocRef = sheet.vocStc / sheet.cellsSeries;
    cp.alphaIsc = sheet.alphaIscPerK;
    cp.idealityN = sheet.idealityN;
    cp.seriesRes = fit.x;

    return PvModule(SolarCell(cp), sheet.cellsSeries, sheet.stringsParallel,
                    sheet.noctC);
}

PvModule
buildBp3180n()
{
    return buildCalibratedModule(bp3180nDatasheet());
}

} // namespace solarcore::pv
