/**
 * @file
 * Batched structure-of-arrays PV kernels with runtime SIMD dispatch.
 *
 * The campaign runner evaluates millions of nearly identical (G, T)
 * panel points per run; the scalar SolarCell entry points solve them
 * one Lambert-W call at a time, re-deriving every per-environment
 * constant (I0's pow+exp, Iph, the log prefactor) on each call. This
 * layer restructures the hot path three ways:
 *
 *  1. evalIv() / findMppBatch() advance many scenario lanes in one
 *     instruction stream over SoA inputs, hoisting the per-lane
 *     constants out of the Newton iterations;
 *  2. the lane loop exists twice -- a portable kernel built with the
 *     baseline ISA, and an explicit AVX2+FMA kernel (4-wide double
 *     vectors with polynomial exp/log) selected at runtime via CPUID.
 *     On non-x86 targets the portable loop is what the native SIMD
 *     (e.g. NEON) autovectorizer sees;
 *  3. PreparedArray caches one environment's derived constants so the
 *     controller's repeated pinRailVoltage() probes at a fixed
 *     environment cost a handful of warm Lambert evaluations instead
 *     of a full findMpp plus a 40-step std::function bisect each.
 *
 * PvKernel::Scalar preserves the untouched legacy call sequence as the
 * always-built parity oracle, exactly like the PR 1 Newton oracle:
 * selecting it routes every consumer (day drivers, MppCache, the
 * controller) through the original per-call scalar code path.
 *
 * Determinism contract: for a fixed kernel choice, results are a pure
 * function of the inputs -- independent of batch size, lane position
 * and thread count -- so campaign summaries stay byte-identical at any
 * --threads value.
 */

#ifndef SOLARCORE_PV_PV_KERNEL_HPP
#define SOLARCORE_PV_PV_KERNEL_HPP

#include <span>
#include <string_view>

#include "pv/mpp.hpp"

namespace solarcore::pv {

/** The selectable batch-kernel implementations. */
enum class PvKernel
{
    Scalar = 0,  //!< legacy per-call scalar path (parity oracle)
    Portable,    //!< SoA lane loop, baseline ISA
    Avx2,        //!< explicit AVX2+FMA lanes (x86-64 with CPUID support)
};

/** Kernel token: "scalar", "portable" or "avx2". */
const char *pvKernelName(PvKernel kernel);

/** Parse a kernel token; returns false on an unknown token ("auto"
 *  is not a kernel -- resolve it with detectPvKernel()). */
bool pvKernelFromToken(std::string_view token, PvKernel &out);

/** Best kernel this binary + machine can run (the "auto" choice). */
PvKernel detectPvKernel();

/** True when @p kernel was compiled in and the CPU can execute it. */
bool pvKernelSupported(PvKernel kernel);

/**
 * Select the process-global kernel. Asserts the kernel is supported.
 * Global and atomic, mirroring setNewtonIvSolve(); intended to be set
 * once at CLI startup (or per benchmark/test with save-restore).
 */
void setPvKernel(PvKernel kernel);

/** The active kernel; resolves to detectPvKernel() until set. */
PvKernel selectedPvKernel();

/** One lane of a batched I-V evaluation. */
struct IvOut
{
    double current = 0.0; //!< I(v) [A], same sign convention as currentAt
    double slope = 0.0;   //!< dI/dV [A/V], always <= 0
};

/**
 * Batched cell-level I-V evaluation: out[k] = {I, dI/dV} of @p cell at
 * terminal voltage v[k] under envs[k]. Lanes are independent; dark
 * (G <= 0) and Rs = 0 lanes fall back to the exact scalar formulas so
 * special-case parity is bitwise. All spans must have equal length.
 */
void evalIv(const SolarCell &cell, std::span<const Environment> envs,
            std::span<const double> v, std::span<IvOut> out);

/**
 * Batched array-level MPP solve: out[k] = MPP of the uniform
 * series-parallel arrangement under envs[k], matching the analytic
 * findMpp(PvArray) within Newton convergence tolerance. Dark lanes
 * yield the all-zero MppResult. Spans must have equal length.
 */
void findMppBatch(const PvModule &module, int modules_series,
                  int modules_parallel, std::span<const Environment> envs,
                  std::span<MppResult> out);

/**
 * Per-environment prepared solver for one uniform PV array.
 *
 * setEnvironment() derives the Lambert-W constants (Vt, Iph, I0, the
 * log prefactor) and the analytic MPP once; currentAt() and
 * solveStableBranch() then evaluate the single-diode curve with one
 * warm lambertW0exp() each. The controller's sustainable() probes and
 * rail pinning re-query the same environment dozens of times per
 * simulation step, which is exactly the redundancy this removes.
 *
 * The MPP is computed with the same scalar code path findMpp(PvArray)
 * uses, so feasibility decisions (p_needed > mpp.power) are bitwise
 * identical to the legacy pin path.
 */
class PreparedArray
{
  public:
    PreparedArray(const PvModule &module, int modules_series,
                  int modules_parallel);

    /** Rebind to @p env; a no-op when the bits are unchanged. */
    void setEnvironment(const Environment &env);

    bool dark() const { return dark_; }

    /** Array open-circuit voltage at the prepared environment [V]. */
    double openCircuitVoltage() const { return vocArray_; }

    /** Array-level MPP at the prepared environment. */
    const MppResult &mpp() const { return mpp_; }

    /** Array terminal current at array voltage @p v_array [A]. */
    double currentAt(double v_array) const;

    /**
     * Solve v * I(v) = @p p_array_w on the stable branch
     * [Vmpp, Voc] (P falls monotonically from Pmpp to 0 there).
     * Safeguarded Newton with the analytic slope; requires
     * p_array_w <= mpp().power. Returns false when the solve cannot
     * converge (dark array or infeasible power).
     */
    bool solveStableBranch(double p_array_w, double &v_array,
                           double &i_array) const;

  private:
    /** Cell current at cell voltage @p v_cell (hoisted constants). */
    double cellCurrentAt(double v_cell) const;

    SolarCell cell_;
    double vScale_; //!< cellsSeries * modulesSeries
    double iScale_; //!< stringsParallel * modulesParallel
    int modulesSeries_;
    int cellsSeries_;
    int stringsParallel_;
    int modulesParallel_;

    Environment env_{-1.0, -1000.0}; //!< sentinel: never a real env
    bool prepared_ = false;
    bool dark_ = true;
    double vt_ = 0.0;
    double iph_ = 0.0;
    double i0_ = 0.0;
    double a_ = 0.0;   //!< Iph + I0
    double rs_ = 0.0;
    double logC_ = 0.0; //!< log(I0 Rs / Vt) + A Rs / Vt
    double vocCell_ = 0.0;
    double vocArray_ = 0.0;
    MppResult mpp_;
    double wMpp_ = 0.0; //!< Lambert w at the cell MPP voltage (Rs > 0)
    double wVoc_ = 0.0; //!< Lambert w where I = 0: A Rs / Vt (Rs > 0)
    //! Previous stable-branch root (in w), seeding the next pin's
    //! Newton solve while it still lies inside the fresh bracket.
    mutable double warmW_ = -1.0;
};

} // namespace solarcore::pv

#endif // SOLARCORE_PV_PV_KERNEL_HPP
