#include "mpp_cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/profiler.hpp"
#include "pv/pv_kernel.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::pv {

namespace {

std::int64_t
quantize(double value, double quantum)
{
    if (quantum > 0.0)
        return static_cast<std::int64_t>(std::llround(value / quantum));
    // Exact mode: key on the bit pattern, so only identical doubles
    // collapse to one entry and cached results are bit-identical to
    // the uncached solve.
    std::int64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

} // namespace

MppCache::MppCache(const PvModule &module, int modules_series,
                   int modules_parallel, double g_quantum, double t_quantum)
    : array_(module, modules_series, modules_parallel, kStc),
      gQuantum_(g_quantum), tQuantum_(t_quantum)
{
    SC_ASSERT(g_quantum >= 0.0 && t_quantum >= 0.0,
              "MppCache: negative quantum");
}

MppCache::Key
MppCache::keyFor(const Environment &env) const
{
    return {quantize(env.irradiance, gQuantum_),
            quantize(env.cellTempC, tQuantum_)};
}

MppResult
MppCache::mpp(const Environment &env)
{
    SC_PROFILE_SCOPE("mpp.lookup");
    if (env.irradiance <= 0.0)
        return MppResult{}; // dark: not worth an entry

    // Oracle mode bypasses the memo too: every lookup re-solves via the
    // seed path, so flagged runs measure/reproduce it faithfully.
    if (newtonIvSolve()) {
        SC_PROFILE_SCOPE("mpp.solve");
        array_.setEnvironment(env);
        return findMpp(array_);
    }

    const Key key = keyFor(env);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
        ++stats_.hits;
        return it->second;
    }
    ++stats_.misses;
    SC_PROFILE_SCOPE("mpp.solve");
    // Quantized mode solves at the bucket center so every environment
    // in the bucket maps to one consistent result.
    Environment solved = env;
    if (gQuantum_ > 0.0)
        solved.irradiance = static_cast<double>(key.g) * gQuantum_;
    if (tQuantum_ > 0.0)
        solved.cellTempC = static_cast<double>(key.t) * tQuantum_;
    array_.setEnvironment(solved);
    const MppResult res = findMpp(array_);
    memo_.emplace(key, res);
    return res;
}

void
MppCache::lookupBatch(std::span<const Environment> envs,
                      std::span<MppResult> out)
{
    SC_ASSERT(envs.size() == out.size(),
              "lookupBatch: span lengths differ");
    SC_PROFILE_SCOPE("mpp.lookupBatch");
    if (selectedPvKernel() == PvKernel::Scalar || newtonIvSolve()) {
        // Legacy measurement path: per-element lookups with their
        // original profiling scopes, stats ordering and solve routing.
        for (std::size_t k = 0; k < envs.size(); ++k)
            out[k] = mpp(envs[k]);
        return;
    }

    // Pass 1: classify each environment against the memo. emplace()'s
    // "inserted" bit distinguishes a genuine miss (first occurrence of
    // a never-memoized key) from a hit (memoized earlier, or a repeat
    // within this batch -- sequentially the repeat would have hit the
    // entry the first occurrence inserted).
    std::vector<Environment> solve_envs;
    std::vector<Key> solve_keys;
    for (const Environment &env : envs) {
        if (env.irradiance <= 0.0)
            continue; // dark: not worth an entry (as in mpp())
        const Key key = keyFor(env);
        const auto [it, inserted] = memo_.emplace(key, MppResult{});
        if (!inserted) {
            ++stats_.hits;
            continue;
        }
        ++stats_.misses;
        // Quantized mode solves at the bucket center, exactly as the
        // scalar path does.
        Environment solved = env;
        if (gQuantum_ > 0.0)
            solved.irradiance = static_cast<double>(key.g) * gQuantum_;
        if (tQuantum_ > 0.0)
            solved.cellTempC = static_cast<double>(key.t) * tQuantum_;
        solve_envs.push_back(solved);
        solve_keys.push_back(key);
    }

    if (!solve_envs.empty()) {
        SC_PROFILE_SCOPE("mpp.solveBatch");
        std::vector<MppResult> solved(solve_envs.size());
        findMppBatch(array_.module(), array_.modulesSeries(),
                     array_.modulesParallel(), solve_envs, solved);
        for (std::size_t j = 0; j < solve_keys.size(); ++j)
            memo_[solve_keys[j]] = solved[j];
    }

    for (std::size_t k = 0; k < envs.size(); ++k) {
        if (envs[k].irradiance <= 0.0)
            out[k] = MppResult{};
        else
            out[k] = memo_.find(keyFor(envs[k]))->second;
    }
}

bool
MppCache::compatibleWith(const PvModule &module, int modules_series,
                         int modules_parallel) const
{
    return array_.modulesSeries() == modules_series &&
        array_.modulesParallel() == modules_parallel &&
        array_.module().cellsSeries() == module.cellsSeries() &&
        array_.module().stringsParallel() == module.stringsParallel() &&
        array_.module().cell().params() == module.cell().params();
}

void
MppCache::clear()
{
    memo_.clear();
    stats_ = Stats{};
}

MppGrid::MppGrid(const PvModule &module, int modules_series,
                 int modules_parallel, double g_min, double g_max,
                 int g_steps, double t_min, double t_max, int t_steps)
    : module_(module), modulesSeries_(modules_series),
      modulesParallel_(modules_parallel), gMin_(g_min), gMax_(g_max),
      tMin_(t_min), tMax_(t_max), gSteps_(g_steps), tSteps_(t_steps)
{
    SC_ASSERT(g_steps >= 2 && t_steps >= 2, "MppGrid: need a 2x2 grid");
    SC_ASSERT(g_max > g_min && t_max > t_min, "MppGrid: empty ranges");
    table_.resize(static_cast<std::size_t>(g_steps) *
                  static_cast<std::size_t>(t_steps));
    PvArray array(module, modules_series, modules_parallel, kStc);
    for (int gi = 0; gi < g_steps; ++gi) {
        const double g = lerp(gMin_, gMax_,
                              static_cast<double>(gi) / (g_steps - 1));
        for (int ti = 0; ti < t_steps; ++ti) {
            const double t = lerp(tMin_, tMax_,
                                  static_cast<double>(ti) / (t_steps - 1));
            array.setEnvironment({g, t});
            table_[static_cast<std::size_t>(gi) *
                       static_cast<std::size_t>(t_steps) +
                   static_cast<std::size_t>(ti)] = findMpp(array);
        }
    }
}

MppResult
MppGrid::at(int gi, int ti) const
{
    return table_[static_cast<std::size_t>(gi) *
                      static_cast<std::size_t>(tSteps_) +
                  static_cast<std::size_t>(ti)];
}

MppResult
MppGrid::interpolate(const Environment &env) const
{
    if (env.irradiance <= 0.0)
        return MppResult{};

    const double gf = clamp((env.irradiance - gMin_) / (gMax_ - gMin_),
                            0.0, 1.0) * (gSteps_ - 1);
    const double tf = clamp((env.cellTempC - tMin_) / (tMax_ - tMin_),
                            0.0, 1.0) * (tSteps_ - 1);
    const int gi = std::min(static_cast<int>(gf), gSteps_ - 2);
    const int ti = std::min(static_cast<int>(tf), tSteps_ - 2);
    const double gu = gf - gi;
    const double tu = tf - ti;

    auto blend = [&](auto select) {
        const double a = lerp(select(at(gi, ti)), select(at(gi + 1, ti)), gu);
        const double b =
            lerp(select(at(gi, ti + 1)), select(at(gi + 1, ti + 1)), gu);
        return lerp(a, b, tu);
    };
    MppResult res;
    res.voltage = blend([](const MppResult &m) { return m.voltage; });
    res.current = blend([](const MppResult &m) { return m.current; });
    res.power = blend([](const MppResult &m) { return m.power; });
    return res;
}

MppResult
MppGrid::refined(const Environment &env) const
{
    if (env.irradiance <= 0.0)
        return MppResult{};

    const MppResult seed = interpolate(env);
    const SolarCell &cell = module_.cell();
    const double v_scale =
        static_cast<double>(module_.cellsSeries() * modulesSeries_);
    const double i_scale =
        static_cast<double>(module_.stringsParallel() * modulesParallel_);
    const double v_cell =
        cell.refineMppVoltage(seed.voltage / v_scale, env, /*iters=*/12);

    MppResult res;
    res.voltage = v_cell * v_scale;
    res.current = std::max(0.0, cell.currentAt(v_cell, env)) * i_scale;
    res.power = res.voltage * res.current;
    return res;
}

} // namespace solarcore::pv
