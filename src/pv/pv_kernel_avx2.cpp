/**
 * @file
 * AVX2+FMA instantiation of the batched PV lane kernels.
 *
 * This translation unit is the only one compiled with -mavx2 -mfma
 * (see src/pv/CMakeLists.txt); it must stay free of code that could be
 * called on a non-AVX2 machine. The dispatcher in pv_kernel.cpp only
 * routes here after cpuHasAvx2() confirms both the CPUID feature bits
 * and OS ymm-state support.
 *
 * The backend maps the Vec concept onto 4-wide double vectors: GCC/
 * Clang vector-extension arithmetic on __m256d (which the compilers
 * contract into FMA under -mfma), blendv for masked selects, and the
 * 64-bit integer lanes of AVX2 for the exponent splice / mantissa
 * decomposition that vExp / vLog are built on.
 */

#ifdef SOLARCORE_HAVE_AVX2

#include <immintrin.h>

#include "pv/pv_kernel_detail.hpp"

namespace solarcore::pv::detail {

namespace {

struct VecAvx2
{
    static constexpr int width = 4;
    using Reg = __m256d;
    using Mask = __m256d; //!< all-ones / all-zero lanes from _mm256_cmp_pd

    static Reg bcast(double x) { return _mm256_set1_pd(x); }
    static Reg load(const double *p) { return _mm256_loadu_pd(p); }
    static void store(double *p, Reg x) { _mm256_storeu_pd(p, x); }
    static Reg min(Reg a, Reg b) { return _mm256_min_pd(a, b); }
    static Reg max(Reg a, Reg b) { return _mm256_max_pd(a, b); }
    static Mask cmpGt(Reg a, Reg b)
    {
        return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
    }
    static Mask cmpLe(Reg a, Reg b)
    {
        return _mm256_cmp_pd(a, b, _CMP_LE_OQ);
    }
    static Mask cmpGe(Reg a, Reg b)
    {
        return _mm256_cmp_pd(a, b, _CMP_GE_OQ);
    }
    static Mask maskOr(Mask a, Mask b) { return _mm256_or_pd(a, b); }
    //! Unconditionally fused: the TU builds with -ffp-contract=off, so
    //! every FMA this kernel executes is spelled here explicitly.
    static Reg mulAdd(Reg a, Reg b, Reg c)
    {
        return _mm256_fmadd_pd(a, b, c);
    }
    static Reg select(Mask m, Reg a, Reg b)
    {
        return _mm256_blendv_pd(b, a, m);
    }

    static Reg
    roundNearest(Reg x)
    {
        return _mm256_round_pd(x,
                               _MM_FROUND_TO_NEAREST_INT |
                                   _MM_FROUND_NO_EXC);
    }

    /** 2^k for integer-valued k in [-1022, 1023], by exponent splice. */
    static Reg
    pow2i(Reg k)
    {
        // k is small and integral: widen via int32 (exact for |k|<2^31).
        const __m128i k32 = _mm256_cvtpd_epi32(k);
        const __m256i k64 = _mm256_cvtepi32_epi64(k32);
        const __m256i bits = _mm256_slli_epi64(
            _mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
        return _mm256_castsi256_pd(bits);
    }

    /** Decompose finite x > 0 as m * 2^e with m in [1, 2). */
    static void
    frexpParts(Reg x, Reg *m, Reg *e)
    {
        const __m256i bits = _mm256_castpd_si256(x);
        const __m256i raw_exp = _mm256_srli_epi64(bits, 52);
        // Unbiased exponent as a double: the shifted value fits in 32
        // bits per lane, so an int32-style convert via packing works;
        // simplest exact route is subtract-bias in int64 then convert
        // through the 2^52 magic-number trick.
        const __m256i biased = _mm256_and_si256(
            raw_exp, _mm256_set1_epi64x(0x7ff));
        // int64 -> double for 0 <= v < 2^52: OR the bits into the
        // mantissa of 2^52 and subtract 2^52.
        const __m256i magic_i = _mm256_set1_epi64x(0x4330000000000000LL);
        const __m256d magic_d = _mm256_castsi256_pd(magic_i);
        const __m256d biased_d = _mm256_sub_pd(
            _mm256_castsi256_pd(_mm256_or_si256(biased, magic_i)),
            magic_d);
        *e = _mm256_sub_pd(biased_d, _mm256_set1_pd(1023.0));
        const __m256i mant = _mm256_or_si256(
            _mm256_and_si256(bits,
                             _mm256_set1_epi64x(0x000fffffffffffffLL)),
            _mm256_set1_epi64x(0x3ff0000000000000LL));
        *m = _mm256_castsi256_pd(mant);
    }
};

} // namespace

void
evalIvBatchAvx2(const CellConsts &c, const double *g, const double *t,
                const double *v, std::size_t n, double *i_out,
                double *di_out)
{
    evalIvBatchImpl<VecAvx2>(c, g, t, v, n, i_out, di_out);
}

void
mppBatchAvx2(const CellConsts &c, const double *g, const double *t,
             std::size_t n, double *v_out, double *i_out)
{
    mppBatchImpl<VecAvx2>(c, g, t, n, v_out, i_out);
}

} // namespace solarcore::pv::detail

#endif // SOLARCORE_HAVE_AVX2
