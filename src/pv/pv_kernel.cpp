#include "pv_kernel.hpp"

#include <atomic>
#include <cmath>

#include "obs/profiler.hpp"
#include "pv/pv_kernel_detail.hpp"
#include "util/cpuid.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::pv {

namespace detail {

CellConsts
CellConsts::from(const SolarCell &cell)
{
    constexpr double kBoltzmann = 1.380649e-23;   // [J/K]
    constexpr double kElectron = 1.602176634e-19; // [C]
    const CellParams &p = cell.params();
    CellConsts c;
    c.iscRef = p.iscRef;
    c.alphaIsc = p.alphaIsc;
    c.rs = p.seriesRes;
    c.i0Ref = cell.saturationCurrentRef();
    c.nkOverQ = p.idealityN * kBoltzmann / kElectron;
    c.egOverNk = p.bandgapEv * kElectron / (p.idealityN * kBoltzmann);
    c.tRefK = kelvin(kStc.cellTempC);
    return c;
}

} // namespace detail

namespace {

// -1 = unset: resolve lazily to detectPvKernel(). Mirrors the Newton
// oracle flag: global, relaxed atomics, set once at startup.
std::atomic<int> g_pv_kernel{-1};

void
batchEvalDispatch(const detail::CellConsts &c, const double *g,
                  const double *t, const double *v, std::size_t n,
                  double *i_out, double *di_out, PvKernel kernel)
{
#ifdef SOLARCORE_HAVE_AVX2
    if (kernel == PvKernel::Avx2) {
        detail::evalIvBatchAvx2(c, g, t, v, n, i_out, di_out);
        return;
    }
#else
    (void)kernel;
#endif
    detail::evalIvBatchPortable(c, g, t, v, n, i_out, di_out);
}

void
batchMppDispatch(const detail::CellConsts &c, const double *g,
                 const double *t, std::size_t n, double *v_out,
                 double *i_out, PvKernel kernel)
{
#ifdef SOLARCORE_HAVE_AVX2
    if (kernel == PvKernel::Avx2) {
        detail::mppBatchAvx2(c, g, t, n, v_out, i_out);
        return;
    }
#else
    (void)kernel;
#endif
    detail::mppBatchPortable(c, g, t, n, v_out, i_out);
}

// Lane-chunk size for the SoA gather buffers: big enough to amortize
// the loop overhead, small enough to live on the stack.
constexpr std::size_t kChunk = 128;

} // namespace

const char *
pvKernelName(PvKernel kernel)
{
    switch (kernel) {
    case PvKernel::Scalar:
        return "scalar";
    case PvKernel::Portable:
        return "portable";
    case PvKernel::Avx2:
        return "avx2";
    }
    return "unknown";
}

bool
pvKernelFromToken(std::string_view token, PvKernel &out)
{
    if (token == "scalar") {
        out = PvKernel::Scalar;
        return true;
    }
    if (token == "portable") {
        out = PvKernel::Portable;
        return true;
    }
    if (token == "avx2") {
        out = PvKernel::Avx2;
        return true;
    }
    return false;
}

PvKernel
detectPvKernel()
{
#ifdef SOLARCORE_HAVE_AVX2
    if (cpuHasAvx2())
        return PvKernel::Avx2;
#endif
    return PvKernel::Portable;
}

bool
pvKernelSupported(PvKernel kernel)
{
    switch (kernel) {
    case PvKernel::Scalar:
    case PvKernel::Portable:
        return true;
    case PvKernel::Avx2:
#ifdef SOLARCORE_HAVE_AVX2
        return cpuHasAvx2();
#else
        return false;
#endif
    }
    return false;
}

void
setPvKernel(PvKernel kernel)
{
    SC_ASSERT(pvKernelSupported(kernel),
              "setPvKernel: kernel not available on this build/machine");
    g_pv_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

PvKernel
selectedPvKernel()
{
    const int raw = g_pv_kernel.load(std::memory_order_relaxed);
    if (raw >= 0)
        return static_cast<PvKernel>(raw);
    const PvKernel detected = detectPvKernel();
    // Benign race: every thread detects the same value.
    g_pv_kernel.store(static_cast<int>(detected),
                      std::memory_order_relaxed);
    return detected;
}

void
evalIv(const SolarCell &cell, std::span<const Environment> envs,
       std::span<const double> v, std::span<IvOut> out)
{
    SC_ASSERT(envs.size() == v.size() && envs.size() == out.size(),
              "evalIv: span lengths differ");
    const PvKernel kernel = selectedPvKernel();
    if (kernel == PvKernel::Scalar || newtonIvSolve() ||
        cell.params().seriesRes <= 0.0) {
        // Parity-oracle route: the untouched per-call scalar path
        // (bitwise identical to legacy callers, including the exact
        // expm1 Rs = 0 formula and the Newton oracle when flagged).
        for (std::size_t k = 0; k < envs.size(); ++k) {
            out[k].current = cell.currentAt(v[k], envs[k]);
            out[k].slope = cell.currentSlopeAt(v[k], envs[k]);
        }
        return;
    }

    SC_PROFILE_SCOPE("pv.evalIvBatch");
    const detail::CellConsts consts = detail::CellConsts::from(cell);
    alignas(64) double gs[kChunk], ts[kChunk], vs[kChunk];
    alignas(64) double is[kChunk], dis[kChunk];
    for (std::size_t base = 0; base < envs.size(); base += kChunk) {
        const std::size_t m = std::min(kChunk, envs.size() - base);
        for (std::size_t j = 0; j < m; ++j) {
            const Environment &e = envs[base + j];
            // Dark lanes run the vector math on a benign stand-in and
            // are overwritten with the exact scalar dark formula below
            // (lanes are independent, so the stand-in affects nothing).
            const bool dark = e.irradiance <= 0.0;
            gs[j] = dark ? kStc.irradiance : e.irradiance;
            ts[j] = e.cellTempC;
            vs[j] = v[base + j];
        }
        batchEvalDispatch(consts, gs, ts, vs, m, is, dis, kernel);
        for (std::size_t j = 0; j < m; ++j) {
            const Environment &e = envs[base + j];
            if (e.irradiance <= 0.0) {
                out[base + j].current = cell.currentAt(v[base + j], e);
                out[base + j].slope =
                    cell.currentSlopeAt(v[base + j], e);
            } else {
                out[base + j].current = is[j];
                out[base + j].slope = dis[j];
            }
        }
    }
}

void
findMppBatch(const PvModule &module, int modules_series,
             int modules_parallel, std::span<const Environment> envs,
             std::span<MppResult> out)
{
    SC_ASSERT(envs.size() == out.size(),
              "findMppBatch: span lengths differ");
    SC_ASSERT(modules_series > 0 && modules_parallel > 0,
              "findMppBatch: arrangement must be positive");
    const SolarCell &cell = module.cell();
    const PvKernel kernel = selectedPvKernel();
    if (kernel == PvKernel::Scalar || newtonIvSolve() ||
        cell.params().seriesRes <= 0.0) {
        // Parity-oracle route: exact per-lane findMpp(PvArray),
        // including the golden-section path under the Newton oracle.
        PvArray array(module, modules_series, modules_parallel, kStc);
        for (std::size_t k = 0; k < envs.size(); ++k) {
            array.setEnvironment(envs[k]);
            out[k] = findMpp(array);
        }
        return;
    }

    SC_PROFILE_SCOPE("pv.findMppBatch");
    const detail::CellConsts consts = detail::CellConsts::from(cell);
    const double v_scale =
        static_cast<double>(module.cellsSeries() * modules_series);
    const double i_scale =
        static_cast<double>(module.stringsParallel() * modules_parallel);
    alignas(64) double gs[kChunk], ts[kChunk];
    alignas(64) double vm[kChunk], im[kChunk];
    for (std::size_t base = 0; base < envs.size(); base += kChunk) {
        const std::size_t m = std::min(kChunk, envs.size() - base);
        for (std::size_t j = 0; j < m; ++j) {
            const Environment &e = envs[base + j];
            const bool dark = e.irradiance <= 0.0;
            gs[j] = dark ? kStc.irradiance : e.irradiance;
            ts[j] = e.cellTempC;
        }
        batchMppDispatch(consts, gs, ts, m, vm, im, kernel);
        for (std::size_t j = 0; j < m; ++j) {
            if (envs[base + j].irradiance <= 0.0) {
                out[base + j] = MppResult{};
            } else {
                MppResult &r = out[base + j];
                r.voltage = vm[j] * v_scale;
                r.current = im[j] * i_scale;
                r.power = r.voltage * r.current;
            }
        }
    }
}

PreparedArray::PreparedArray(const PvModule &module, int modules_series,
                             int modules_parallel)
    : cell_(module.cell()),
      vScale_(static_cast<double>(module.cellsSeries() * modules_series)),
      iScale_(
          static_cast<double>(module.stringsParallel() * modules_parallel)),
      modulesSeries_(modules_series), cellsSeries_(module.cellsSeries()),
      stringsParallel_(module.stringsParallel()),
      modulesParallel_(modules_parallel)
{
    SC_ASSERT(modules_series > 0 && modules_parallel > 0,
              "PreparedArray: arrangement must be positive");
}

void
PreparedArray::setEnvironment(const Environment &env)
{
    if (prepared_ && env.irradiance == env_.irradiance &&
        env.cellTempC == env_.cellTempC)
        return;
    env_ = env;
    prepared_ = true;

    vt_ = cell_.thermalVoltage(env.cellTempC);
    i0_ = cell_.saturationCurrent(env.cellTempC);
    rs_ = cell_.params().seriesRes;
    dark_ = env.irradiance <= 0.0;
    if (dark_) {
        iph_ = 0.0;
        a_ = i0_;
        logC_ = 0.0;
        vocCell_ = 0.0;
        vocArray_ = 0.0;
        mpp_ = MppResult{};
        return;
    }
    iph_ = cell_.photoCurrent(env);
    a_ = iph_ + i0_;
    logC_ = rs_ > 0.0
        ? std::log(i0_ * rs_ / vt_) + a_ * rs_ / vt_
        : 0.0;
    vocCell_ = cell_.openCircuitVoltage(env);
    vocArray_ = vocCell_ * vScale_;

    // The MPP runs through the very same scalar calls findMpp(PvArray)
    // makes, so the feasibility threshold a pin decision compares
    // against (p_needed > mpp.power) is bitwise identical to the
    // legacy path's.
    const double v_cell = cell_.mppVoltage(env);
    const double i_cell = std::max(0.0, cell_.currentAt(v_cell, env));
    mpp_.voltage = v_cell * vScale_;
    mpp_.current = i_cell * iScale_;
    mpp_.power = mpp_.voltage * mpp_.current;

    // w-space bracket of the stable branch [Vmpp, Voc] for the pin
    // solver: one cold Lambert solve at the MPP; the Voc end is exact
    // (I = 0 at w = A Rs / Vt).
    if (rs_ > 0.0) {
        wMpp_ = lambertW0exp(logC_ + v_cell / vt_);
        wVoc_ = a_ * rs_ / vt_;
    } else {
        wMpp_ = 0.0;
        wVoc_ = 0.0;
    }
}

double
PreparedArray::cellCurrentAt(double v_cell) const
{
    if (dark_ || rs_ <= 0.0)
        return iph_ - i0_ * std::expm1(v_cell / vt_);
    const double w = lambertW0exp(logC_ + v_cell / vt_);
    return a_ - w * vt_ / rs_;
}

double
PreparedArray::currentAt(double v_array) const
{
    SC_ASSERT(prepared_, "PreparedArray: no environment set");
    // Same operation order as PvArray::currentAt -> PvModule::currentAt
    // (module voltage, then cell voltage, clamp, then the two parallel
    // scalings) so the curve matches the legacy source lane for lane.
    const double v_module = v_array / modulesSeries_;
    const double v_cell = v_module / cellsSeries_;
    const double i =
        std::max(0.0, cellCurrentAt(v_cell)) * stringsParallel_;
    return i * modulesParallel_;
}

bool
PreparedArray::solveStableBranch(double p_array_w, double &v_array,
                                 double &i_array) const
{
    SC_ASSERT(prepared_, "PreparedArray: no environment set");
    if (dark_ || p_array_w > mpp_.power)
        return false;

    if (rs_ <= 0.0) {
        // Rs = 0: Newton on f(v) = v I(v) - p over [Vmpp, Voc] with
        // the exact expm1 formulas, bisecting when a step degenerates
        // or escapes the bracket. f is monotone decreasing here with
        // f(Vmpp) >= 0 >= f(Voc), so the bracket never empties.
        double lo = mpp_.voltage;
        double hi = vocArray_;
        double v = 0.5 * (lo + hi);
        const double slope_scale = iScale_ / vScale_;
        for (int it = 0; it < 60; ++it) {
            const double v_cell = v / modulesSeries_ / cellsSeries_;
            const double i_cell = iph_ - i0_ * std::expm1(v_cell / vt_);
            const double di_cell = -i0_ / vt_ * std::exp(v_cell / vt_);
            const double i = std::max(0.0, i_cell) * stringsParallel_ *
                modulesParallel_;
            const double f = v * i - p_array_w;
            if (f > 0.0)
                lo = v;
            else
                hi = v;
            const double df = i + v * di_cell * slope_scale;
            double next = df != 0.0 ? v - f / df : 0.5 * (lo + hi);
            if (std::abs(next - v) <= 1e-13 * (1.0 + std::abs(v))) {
                v = next;
                break;
            }
            if (next <= lo || next >= hi)
                next = 0.5 * (lo + hi);
            v = next;
        }
        v_array = v;
        i_array = currentAt(v);
        return true;
    }

    // Rs > 0: Newton on F(w) = V(w) I(w) - p over [wMpp, wVoc],
    // parametrized by the Lambert variable so each iteration costs one
    // log instead of a full W0exp re-solve:
    //
    //   V(w) = S_v Vt (w + log w - logC)      S_v = cells x modules
    //   I(w) = S_i (A - (Vt/Rs) w)            S_i = strings x modules
    //   F'(w) = S_v Vt (1 + 1/w) I - V S_i Vt / Rs
    //
    // F is monotone decreasing on the branch (V rises, I falls), so the
    // bracket logic is unchanged. Controllers re-pin nearly identical
    // demands thousands of times between environment changes, so the
    // previous root -- while it still lies inside the fresh bracket --
    // beats the midpoint seed by several iterations.
    double lo = wMpp_;
    double hi = wVoc_;
    double w = (warmW_ > lo && warmW_ < hi) ? warmW_ : 0.5 * (lo + hi);
    const double s = vt_ / rs_;
    for (int it = 0; it < 60; ++it) {
        const double y = w + std::log(w);
        const double v = vScale_ * vt_ * (y - logC_);
        const double i_cell = a_ - s * w;
        const double i =
            std::max(0.0, i_cell) * stringsParallel_ * modulesParallel_;
        const double f = v * i - p_array_w;

        if (f > 0.0)
            lo = w;
        else
            hi = w;

        const double df =
            vScale_ * vt_ * (1.0 + 1.0 / w) * i - v * iScale_ * s;

        double next = df != 0.0 ? w - f / df : 0.5 * (lo + hi);
        if (std::abs(next - w) <= 1e-13 * (1.0 + std::abs(w))) {
            w = next;
            break;
        }
        if (next <= lo || next >= hi)
            next = 0.5 * (lo + hi);
        w = next;
    }
    warmW_ = w;
    v_array = vScale_ * vt_ * (w + std::log(w) - logC_);
    i_array = std::max(0.0, a_ - s * w) * stringsParallel_ *
        modulesParallel_;
    return true;
}

} // namespace solarcore::pv
