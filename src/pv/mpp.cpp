#include "mpp.hpp"

#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::pv {

MppResult
findMpp(const IvSource &source, double v_tol)
{
    MppResult res;
    const double voc = source.openCircuitVoltage();
    if (voc <= 0.0)
        return res; // dark panel: zero power everywhere

    auto power = [&](double v) { return v * source.currentAt(v); };
    const auto opt = goldenMax(power, 0.0, voc, v_tol);
    res.voltage = opt.x;
    res.current = source.currentAt(opt.x);
    res.power = opt.fx;
    return res;
}

std::vector<IvSample>
sampleIvCurve(const IvSource &source, int points)
{
    SC_ASSERT(points >= 2, "sampleIvCurve: need at least two points");
    std::vector<IvSample> samples;
    samples.reserve(static_cast<std::size_t>(points));
    const double voc = source.openCircuitVoltage();
    for (int i = 0; i < points; ++i) {
        const double v = voc * static_cast<double>(i) /
            static_cast<double>(points - 1);
        const double c = source.currentAt(v);
        samples.push_back({v, c, v * c});
    }
    return samples;
}

OperatingPoint
resistiveOperatingPoint(const IvSource &source, double load_ohm)
{
    SC_ASSERT(load_ohm > 0.0, "resistiveOperatingPoint: non-positive load");
    const double voc = source.openCircuitVoltage();
    if (voc <= 0.0)
        return {0.0, 0.0};

    // Source current falls with V while load current rises, so the
    // difference is monotone and bisection is exact.
    auto mismatch = [&](double v) {
        return source.currentAt(v) - v / load_ohm;
    };
    const auto root = bisect(mismatch, 0.0, voc, 1e-9 * voc + 1e-12);
    const double v = root.x;
    return {v, v / load_ohm};
}

} // namespace solarcore::pv
