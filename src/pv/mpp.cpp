#include "mpp.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::pv {

MppResult
findMpp(const IvSource &source, double v_tol)
{
    const double voc = source.openCircuitVoltage();
    if (voc <= 0.0)
        return MppResult{}; // dark panel: explicitly all-zero MPP

    MppResult res;
    auto power = [&](double v) { return v * source.currentAt(v); };
    const auto opt = goldenMax(power, 0.0, voc, v_tol);
    res.voltage = opt.x;
    res.current = source.currentAt(opt.x);
    res.power = opt.fx;
    return res;
}

MppResult
findMpp(const PvArray &array)
{
    const Environment &env = array.environment();
    if (env.irradiance <= 0.0)
        return MppResult{};

    // Oracle mode: route through the generic golden-section search so
    // the flag switches the complete seed solve, not just the I-V
    // kernel (the parity tests and BM_*Newton baselines rely on this).
    if (newtonIvSolve())
        return findMpp(static_cast<const IvSource &>(array));

    const PvModule &module = array.module();
    const SolarCell &cell = module.cell();
    const double v_cell = cell.mppVoltage(env);
    const double i_cell = std::max(0.0, cell.currentAt(v_cell, env));

    MppResult res;
    res.voltage = v_cell *
        static_cast<double>(module.cellsSeries() * array.modulesSeries());
    res.current = i_cell *
        static_cast<double>(module.stringsParallel() *
                            array.modulesParallel());
    res.power = res.voltage * res.current;
    return res;
}

std::vector<IvSample>
sampleIvCurve(const IvSource &source, int points)
{
    SC_ASSERT(points >= 2, "sampleIvCurve: need at least two points");
    std::vector<IvSample> samples;
    const double voc = source.openCircuitVoltage();
    if (voc <= 0.0) {
        // Dark source: the whole curve degenerates to the origin; one
        // zero sample instead of `points` duplicates of it.
        samples.push_back({0.0, 0.0, 0.0});
        return samples;
    }
    samples.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double v = voc * static_cast<double>(i) /
            static_cast<double>(points - 1);
        const double c = source.currentAt(v);
        samples.push_back({v, c, v * c});
    }
    return samples;
}

OperatingPoint
resistiveOperatingPoint(const IvSource &source, double load_ohm)
{
    SC_ASSERT(load_ohm > 0.0, "resistiveOperatingPoint: non-positive load");
    const double voc = source.openCircuitVoltage();
    if (voc <= 0.0)
        return {0.0, 0.0};

    // Source current falls with V while load current rises, so the
    // difference is monotone and bisection is exact.
    auto mismatch = [&](double v) {
        return source.currentAt(v) - v / load_ohm;
    };
    const auto root = bisect(mismatch, 0.0, voc, 1e-9 * voc + 1e-12);
    const double v = root.x;
    return {v, v / load_ohm};
}

} // namespace solarcore::pv
