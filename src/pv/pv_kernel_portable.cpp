/**
 * @file
 * The portable batch kernels: the shared lane templates instantiated
 * at width 1 over plain doubles. The loop body is branch-free
 * arithmetic (no libm), so the baseline-ISA autovectorizer is free to
 * widen it to whatever the target offers.
 *
 * Separate translation unit so FP contraction can be disabled just
 * here (see pv/CMakeLists.txt): with contraction on, the compiler may
 * fuse a*b+c into FMA in the vectorized loop body but not in the
 * scalar remainder, making a lane's result depend on its position in
 * the batch -- which would break the kernel determinism contract
 * (fixed kernel => results independent of batch size and lane
 * position). The explicit AVX2 kernel needs no such guard: its tail
 * is padded to a full 4-wide group, so every lane takes the identical
 * instruction stream.
 */

#include "pv/pv_kernel_detail.hpp"

namespace solarcore::pv::detail {

void
evalIvBatchPortable(const CellConsts &c, const double *g, const double *t,
                    const double *v, std::size_t n, double *i_out,
                    double *di_out)
{
    evalIvBatchImpl<VecScalar>(c, g, t, v, n, i_out, di_out);
}

void
mppBatchPortable(const CellConsts &c, const double *g, const double *t,
                 std::size_t n, double *v_out, double *i_out)
{
    mppBatchImpl<VecScalar>(c, g, t, n, v_out, i_out);
}

} // namespace solarcore::pv::detail
