/**
 * @file
 * Partial shading support: series strings with per-module irradiance
 * and bypass diodes, plus a global MPP search.
 *
 * The paper assumes uniform irradiance across the panel ("under
 * uniform irradiance ... a unique maximum power point"); real arrays
 * see passing shadows that cover some modules only. A bypass diode
 * across each module lets string current flow around a shaded module
 * at the cost of a diode drop, which splits the P-V curve into
 * multiple local maxima -- exactly the condition under which naive
 * perturb-and-observe tracking (and unimodal golden-section search)
 * parks on the wrong hill. This extension models the electrical
 * behaviour and provides the global search a tracker needs.
 */

#ifndef SOLARCORE_PV_SHADING_HPP
#define SOLARCORE_PV_SHADING_HPP

#include <vector>

#include "pv/module.hpp"
#include "pv/mpp.hpp"

namespace solarcore::pv {

/**
 * A series string of identical modules, each under its own
 * environmental condition, with one bypass diode per module.
 */
class ShadedString : public IvSource
{
  public:
    /**
     * @param module        electrical model shared by every position
     * @param environments  one condition per series position
     * @param bypass_drop_v forward drop of a conducting bypass diode
     */
    ShadedString(const PvModule &module,
                 std::vector<Environment> environments,
                 double bypass_drop_v = 0.5);

    int moduleCount() const
    {
        return static_cast<int>(environments_.size());
    }

    /** Replace one position's condition (a shadow moving). */
    void setEnvironment(int position, const Environment &env);

    /**
     * String voltage at string current @p i: each module contributes
     * its operating voltage if it can carry the current, or minus the
     * bypass drop if the current exceeds its photo-current.
     */
    double voltageAt(double i) const;

    /** Largest short-circuit current of any position [A]. */
    double maxShortCircuitCurrent() const;

    // IvSource interface (numeric inversion of voltageAt).
    double currentAt(double v) const override;
    double openCircuitVoltage() const override;

  private:
    /** One module's voltage when forced to carry current @p i. */
    double moduleVoltageAt(int position, double i) const;

    PvModule module_;
    std::vector<Environment> environments_;
    double bypassDropV_;
};

/**
 * Global maximum power point of a possibly multi-peaked source:
 * coarse scan over [0, Voc] followed by golden-section refinement
 * around the best coarse sample. For unimodal curves this returns the
 * same point as findMpp.
 */
MppResult findGlobalMpp(const IvSource &source, int coarse_samples = 64);

/**
 * The local maxima of the P-V curve (for diagnostics and tests):
 * sampled at @p samples points, refined, deduplicated.
 */
std::vector<MppResult> findLocalMaxima(const IvSource &source,
                                       int samples = 128);

} // namespace solarcore::pv

#endif // SOLARCORE_PV_SHADING_HPP
