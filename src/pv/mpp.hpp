/**
 * @file
 * Maximum power point computation and I-V curve sampling
 * (paper Section 2.2, Figures 4, 6, 7).
 */

#ifndef SOLARCORE_PV_MPP_HPP
#define SOLARCORE_PV_MPP_HPP

#include <vector>

#include "pv/module.hpp"

namespace solarcore::pv {

/** The maximum power point of an I-V characteristic. */
struct MppResult
{
    double voltage = 0.0; //!< Vmpp [V]
    double current = 0.0; //!< Impp [A]
    double power = 0.0;   //!< Pmax [W]
};

/**
 * Locate the MPP of @p source by golden-section search on P(V) over
 * [0, Voc]. P(V) = V * I(V) is unimodal for a single-diode source.
 * Generic fallback for arbitrary characteristics (partial shading,
 * composite strings); uniform arrays take the analytic overload below.
 */
MppResult findMpp(const IvSource &source, double v_tol = 1e-4);

/**
 * Fast path for a uniform series-parallel array: the cell-level MPP is
 * solved analytically (closed-form Lambert-W seed plus a bracketed
 * Newton polish on dP/dV) and scaled by the arrangement -- no
 * golden-section probing, no inner I-V iteration. Exact to machine
 * precision; parity with the golden/Newton path is tested across the
 * full (G, T) grid.
 */
MppResult findMpp(const PvArray &array);

/** One sample of an I-V / P-V sweep. */
struct IvSample
{
    double voltage = 0.0;
    double current = 0.0;
    double power = 0.0;
};

/**
 * Sample the characteristic of @p source at @p points evenly spaced
 * voltages in [0, Voc]; used by the Figure 6/7 reproductions.
 */
std::vector<IvSample> sampleIvCurve(const IvSource &source, int points);

/**
 * Operating point of @p source when directly loaded by a fixed
 * resistance @p load_ohm (the Figure 1 / Figure 4 "load line" case):
 * the intersection of I = V / R with the source characteristic.
 */
OperatingPoint resistiveOperatingPoint(const IvSource &source,
                                       double load_ohm);

} // namespace solarcore::pv

#endif // SOLARCORE_PV_MPP_HPP
