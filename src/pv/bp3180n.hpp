/**
 * @file
 * Datasheet model of the BP3180N 180 W polycrystalline module used by
 * the paper (Section 3, reference [11]), plus a generic calibration
 * routine that fits the cell series resistance to a datasheet maximum
 * power rating.
 */

#ifndef SOLARCORE_PV_BP3180N_HPP
#define SOLARCORE_PV_BP3180N_HPP

#include "pv/module.hpp"

namespace solarcore::pv {

/** Datasheet figures for a module at STC. */
struct ModuleDatasheet
{
    const char *name = "BP3180N";
    double maxPower = 180.0;      //!< Pmax [W]
    double vocStc = 44.2;         //!< open-circuit voltage [V]
    double iscStc = 5.4;          //!< short-circuit current [A]
    double vmppStc = 35.8;        //!< MPP voltage [V]
    double imppStc = 5.03;        //!< MPP current [A]
    int cellsSeries = 72;         //!< series cells per module
    int stringsParallel = 1;      //!< parallel strings per module
    double alphaIscPerK = 0.00065;//!< Isc temperature coefficient [1/K]
    double noctC = 47.0;          //!< nominal operating cell temp [C]
    double idealityN = 1.30;      //!< diode ideality used for the fit
};

/** The BP3180N datasheet values. */
ModuleDatasheet bp3180nDatasheet();

/**
 * Build a PvModule whose single-diode parameters are calibrated to the
 * datasheet: Voc and Isc are matched exactly by construction, and the
 * per-cell series resistance is fitted by bisection so the simulated
 * STC maximum power equals `maxPower` (Pmax falls monotonically with
 * Rs, so the fit is exact to the solver tolerance).
 */
PvModule buildCalibratedModule(const ModuleDatasheet &sheet);

/** Convenience: the paper's BP3180N module, calibrated. */
PvModule buildBp3180n();

} // namespace solarcore::pv

#endif // SOLARCORE_PV_BP3180N_HPP
