/**
 * @file
 * PV module and array models (paper Section 3).
 *
 * A module is Ns identical cells in series by Np strings in parallel;
 * an array is a series-parallel arrangement of identical modules. Both
 * expose the same terminal I-V interface, consumed by the MPP finder
 * and the power-delivery operating-point solver.
 */

#ifndef SOLARCORE_PV_MODULE_HPP
#define SOLARCORE_PV_MODULE_HPP

#include "pv/cell.hpp"

namespace solarcore::pv {

/** One electrical operating point of a source or load. */
struct OperatingPoint
{
    double voltage = 0.0; //!< terminal voltage [V]
    double current = 0.0; //!< terminal current [A]

    double power() const { return voltage * current; }
};

/**
 * Abstract terminal I-V characteristic of a DC source at a fixed
 * environmental condition. The power network solver only needs this.
 */
class IvSource
{
  public:
    virtual ~IvSource() = default;

    /** Terminal current when the terminal voltage is @p v [A]. */
    virtual double currentAt(double v) const = 0;

    /** Voltage above which the source delivers no current [V]. */
    virtual double openCircuitVoltage() const = 0;
};

/** A PV module: Ns series cells x Np parallel strings. */
class PvModule
{
  public:
    /**
     * @param cell            electrical model of one cell
     * @param cells_series    Ns, cells per series string
     * @param strings_parallel Np, parallel strings
     * @param noct_c          nominal operating cell temperature [C]
     */
    PvModule(const SolarCell &cell, int cells_series, int strings_parallel,
             double noct_c = 47.0);

    const SolarCell &cell() const { return cell_; }
    int cellsSeries() const { return cellsSeries_; }
    int stringsParallel() const { return stringsParallel_; }

    /** Module terminal current at voltage @p v, clamped at 0 reverse. */
    double currentAt(double v, const Environment &env) const;

    /** Module open-circuit voltage [V]. */
    double openCircuitVoltage(const Environment &env) const;

    /** Module short-circuit current [A]. */
    double shortCircuitCurrent(const Environment &env) const;

    /**
     * Cell temperature from ambient temperature and irradiance via the
     * standard NOCT relation: Tc = Ta + (NOCT - 20) / 800 * G.
     */
    double cellTempFromAmbient(double ambient_c, double irradiance) const;

  private:
    SolarCell cell_;
    int cellsSeries_;
    int stringsParallel_;
    double noctC_;
};

/** A PV array: identical modules in series-parallel, as one IvSource. */
class PvArray : public IvSource
{
  public:
    PvArray(const PvModule &module, int modules_series, int modules_parallel,
            const Environment &env);

    /** Rebind the array to a new environmental condition. */
    void setEnvironment(const Environment &env) { env_ = env; }
    const Environment &environment() const { return env_; }

    const PvModule &module() const { return module_; }
    int modulesSeries() const { return modulesSeries_; }
    int modulesParallel() const { return modulesParallel_; }

    double currentAt(double v) const override;
    double openCircuitVoltage() const override;
    double shortCircuitCurrent() const;

  private:
    PvModule module_;
    int modulesSeries_;
    int modulesParallel_;
    Environment env_;
};

} // namespace solarcore::pv

#endif // SOLARCORE_PV_MODULE_HPP
