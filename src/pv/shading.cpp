#include "shading.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace solarcore::pv {

ShadedString::ShadedString(const PvModule &module,
                           std::vector<Environment> environments,
                           double bypass_drop_v)
    : module_(module), environments_(std::move(environments)),
      bypassDropV_(bypass_drop_v)
{
    SC_ASSERT(!environments_.empty(), "ShadedString: no modules");
    SC_ASSERT(bypass_drop_v >= 0.0, "ShadedString: negative diode drop");
}

void
ShadedString::setEnvironment(int position, const Environment &env)
{
    SC_ASSERT(position >= 0 && position < moduleCount(),
              "ShadedString: bad position");
    environments_[static_cast<std::size_t>(position)] = env;
}

double
ShadedString::maxShortCircuitCurrent() const
{
    double isc = 0.0;
    for (const auto &env : environments_)
        isc = std::max(isc, module_.shortCircuitCurrent(env));
    return isc;
}

double
ShadedString::moduleVoltageAt(int position, double i) const
{
    const auto &env = environments_[static_cast<std::size_t>(position)];
    const double isc = module_.shortCircuitCurrent(env);
    if (i >= isc) {
        // The module cannot source this current: its bypass diode
        // conducts and the position costs one diode drop.
        return -bypassDropV_;
    }
    if (i <= 0.0)
        return module_.openCircuitVoltage(env);

    // Invert the monotone I(V) characteristic on [0, Voc].
    const double voc = module_.openCircuitVoltage(env);
    auto mismatch = [&](double v) { return module_.currentAt(v, env) - i; };
    const auto root = bisect(mismatch, 0.0, voc, 1e-9 * voc + 1e-12);
    return root.x;
}

double
ShadedString::voltageAt(double i) const
{
    double v = 0.0;
    for (int p = 0; p < moduleCount(); ++p)
        v += moduleVoltageAt(p, i);
    return v;
}

double
ShadedString::openCircuitVoltage() const
{
    return voltageAt(0.0);
}

double
ShadedString::currentAt(double v) const
{
    const double isc = maxShortCircuitCurrent();
    if (isc <= 0.0)
        return 0.0;
    if (v >= openCircuitVoltage())
        return 0.0;

    // voltageAt is monotone non-increasing in i; bisect V(i) = v.
    auto mismatch = [&](double i) { return voltageAt(i) - v; };
    const auto root = bisect(mismatch, 0.0, isc, 1e-10 * isc + 1e-14);
    if (!root.converged)
        return 0.0;
    return root.x;
}

MppResult
findGlobalMpp(const IvSource &source, int coarse_samples)
{
    SC_ASSERT(coarse_samples >= 4, "findGlobalMpp: too few samples");
    MppResult best;
    const double voc = source.openCircuitVoltage();
    if (voc <= 0.0)
        return best;

    auto power = [&](double v) { return v * source.currentAt(v); };

    // Coarse scan to find the winning hill.
    int best_idx = 0;
    double best_p = 0.0;
    for (int i = 0; i <= coarse_samples; ++i) {
        const double v = voc * i / coarse_samples;
        const double p = power(v);
        if (p > best_p) {
            best_p = p;
            best_idx = i;
        }
    }

    // Refine within the neighbouring samples.
    const double lo = voc * std::max(0, best_idx - 1) / coarse_samples;
    const double hi = voc * std::min(coarse_samples, best_idx + 1) /
        coarse_samples;
    const auto opt = goldenMax(power, lo, hi, 1e-5 * voc);
    best.voltage = opt.x;
    best.current = source.currentAt(opt.x);
    best.power = opt.fx;
    return best;
}

std::vector<MppResult>
findLocalMaxima(const IvSource &source, int samples)
{
    std::vector<MppResult> maxima;
    const double voc = source.openCircuitVoltage();
    if (voc <= 0.0)
        return maxima;

    auto power = [&](double v) { return v * source.currentAt(v); };

    std::vector<double> p(static_cast<std::size_t>(samples) + 1);
    for (int i = 0; i <= samples; ++i)
        p[static_cast<std::size_t>(i)] = power(voc * i / samples);

    for (int i = 1; i < samples; ++i) {
        if (p[static_cast<std::size_t>(i)] <=
                p[static_cast<std::size_t>(i - 1)] ||
            p[static_cast<std::size_t>(i)] <
                p[static_cast<std::size_t>(i + 1)])
            continue;
        // Interior local max: refine on the bracketing interval.
        const double lo = voc * (i - 1) / samples;
        const double hi = voc * (i + 1) / samples;
        const auto opt = goldenMax(power, lo, hi, 1e-5 * voc);
        // Deduplicate plateau hits.
        if (!maxima.empty() &&
            std::abs(maxima.back().voltage - opt.x) < 1e-3 * voc)
            continue;
        MppResult m;
        m.voltage = opt.x;
        m.current = source.currentAt(opt.x);
        m.power = opt.fx;
        maxima.push_back(m);
    }
    return maxima;
}

} // namespace solarcore::pv
