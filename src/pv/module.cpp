#include "module.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace solarcore::pv {

PvModule::PvModule(const SolarCell &cell, int cells_series,
                   int strings_parallel, double noct_c)
    : cell_(cell), cellsSeries_(cells_series),
      stringsParallel_(strings_parallel), noctC_(noct_c)
{
    SC_ASSERT(cells_series > 0 && strings_parallel > 0,
              "PvModule: arrangement must be positive");
}

double
PvModule::currentAt(double v, const Environment &env) const
{
    const double v_cell = v / cellsSeries_;
    const double i_cell = cell_.currentAt(v_cell, env);
    // A blocking diode prevents the module from sinking current when
    // driven past its open-circuit voltage.
    return std::max(0.0, i_cell) * stringsParallel_;
}

double
PvModule::openCircuitVoltage(const Environment &env) const
{
    return cell_.openCircuitVoltage(env) * cellsSeries_;
}

double
PvModule::shortCircuitCurrent(const Environment &env) const
{
    return std::max(0.0, cell_.shortCircuitCurrent(env)) * stringsParallel_;
}

double
PvModule::cellTempFromAmbient(double ambient_c, double irradiance) const
{
    return ambient_c + (noctC_ - 20.0) / 800.0 * std::max(0.0, irradiance);
}

PvArray::PvArray(const PvModule &module, int modules_series,
                 int modules_parallel, const Environment &env)
    : module_(module), modulesSeries_(modules_series),
      modulesParallel_(modules_parallel), env_(env)
{
    SC_ASSERT(modules_series > 0 && modules_parallel > 0,
              "PvArray: arrangement must be positive");
}

double
PvArray::currentAt(double v) const
{
    const double v_module = v / modulesSeries_;
    return module_.currentAt(v_module, env_) * modulesParallel_;
}

double
PvArray::openCircuitVoltage() const
{
    return module_.openCircuitVoltage(env_) * modulesSeries_;
}

double
PvArray::shortCircuitCurrent() const
{
    return module_.shortCircuitCurrent(env_) * modulesParallel_;
}

} // namespace solarcore::pv
