/**
 * @file
 * Single-diode equivalent-circuit model of a photovoltaic cell
 * (paper Section 2.1, Figure 3).
 *
 * The cell is a photocurrent source in parallel with one diode plus a
 * series resistance Rs; shunt resistance is omitted as negligible,
 * exactly as the paper's "model of moderate complexity". The output
 * current at terminal voltage V solves the implicit equation
 *
 *   I = Iph(G,T) - I0(T) * (exp(q (V + I Rs) / (n k T)) - 1)
 *
 * with irradiance-proportional, temperature-corrected photocurrent and
 * the standard T^3 * exp(-Eg/kT) dark-saturation-current scaling.
 *
 * The implicit equation has a closed-form solution via the Lambert W
 * function,
 *
 *   I = Iph + I0 - (Vt / Rs) * W( (I0 Rs / Vt) exp((V + (Iph+I0) Rs)/Vt) )
 *
 * which is the default evaluation path; the original damped-Newton
 * solve is retained behind setNewtonIvSolve() as a cross-check oracle.
 */

#ifndef SOLARCORE_PV_CELL_HPP
#define SOLARCORE_PV_CELL_HPP

namespace solarcore::pv {

/** Atmospheric operating condition of a panel. */
struct Environment
{
    double irradiance = 1000.0; //!< plane-of-array irradiance G [W/m^2]
    double cellTempC = 25.0;    //!< cell temperature [degrees Celsius]
};

/** Standard test conditions (STC) used for datasheet calibration. */
inline constexpr Environment kStc{1000.0, 25.0};

/** Electrical parameters of one cell, referenced to STC. */
struct CellParams
{
    double iscRef = 5.4;        //!< short-circuit current at STC [A]
    double vocRef = 0.6139;     //!< open-circuit voltage at STC [V]
    double alphaIsc = 0.00065;  //!< relative Isc temperature coeff [1/K]
    double idealityN = 1.30;    //!< diode ideality factor
    double seriesRes = 0.0;     //!< series resistance Rs [ohm]
    double bandgapEv = 1.12;    //!< silicon bandgap [eV]

    bool operator==(const CellParams &) const = default;
};

/**
 * A single PV cell with the physics above.
 *
 * All voltages/currents are per cell; PvModule scales to the
 * series-parallel arrangement.
 */
class SolarCell
{
  public:
    explicit SolarCell(const CellParams &params);

    const CellParams &params() const { return params_; }

    /** Light-generated current Iph at the given condition [A]. */
    double photoCurrent(const Environment &env) const;

    /** Diode dark saturation current I0 at cell temperature [A]. */
    double saturationCurrent(double cell_temp_c) const;

    /**
     * Output current at terminal voltage @p v [V].
     *
     * Evaluated in closed form via the Lambert W function (one
     * transcendental solve, no inner iteration); monotone decreasing
     * in v. Negative results (v beyond Voc) are returned as-is so
     * callers can detect reverse bias; clamp at the call site when
     * modelling a blocking diode. When the Newton oracle flag is set
     * (setNewtonIvSolve) the original damped-Newton solve runs instead.
     */
    double currentAt(double v, const Environment &env) const;

    /**
     * The original damped-Newton solve of the implicit diode equation,
     * kept as a cross-check oracle for the closed-form path (parity is
     * asserted to <= 1e-9 relative across the environmental grid).
     */
    double currentAtNewton(double v, const Environment &env) const;

    /** dI/dV at terminal voltage @p v [A/V]; analytic, always <= 0. */
    double currentSlopeAt(double v, const Environment &env) const;

    /**
     * Cell voltage of the maximum power point [V], solved analytically:
     * the exact Rs = 0 closed form Vmp = Vt (W(e (1 + Iph/I0)) - 1)
     * seeds a safeguarded Newton on dP/dV = I + V dI/dV with both terms
     * from the Lambert-W evaluation. Returns 0 for a dark cell.
     */
    double mppVoltage(const Environment &env) const;

    /**
     * Polish an MPP voltage estimate @p v_seed with @p iters Newton
     * steps on dP/dV (bracketed in [0, Voc]). Used by the (G, T) grid
     * cache to turn a bilinear interpolant into a near-exact MPP.
     */
    double refineMppVoltage(double v_seed, const Environment &env,
                            int iters = 2) const;

    /** Open-circuit voltage at the given condition [V]. */
    double openCircuitVoltage(const Environment &env) const;

    /** Short-circuit current at the given condition [A]. */
    double shortCircuitCurrent(const Environment &env) const;

    /** Thermal voltage n*k*T/q at the given cell temperature [V]. */
    double thermalVoltage(double cell_temp_c) const;

    /** Calibrated dark saturation current at STC [A] (I0 reference). */
    double saturationCurrentRef() const { return i0Ref_; }

  private:
    CellParams params_;
    double i0Ref_; //!< saturation current at STC, from Voc/Isc calibration
};

/**
 * Route SolarCell::currentAt through the legacy damped-Newton solve
 * (true) instead of the closed-form Lambert-W path (false, default).
 * Global and atomic; intended for parity tests and benchmarks only.
 */
void setNewtonIvSolve(bool enabled);

/** Current state of the Newton-oracle flag. */
bool newtonIvSolve();

/** Convert Celsius to Kelvin. */
constexpr double
kelvin(double celsius)
{
    return celsius + 273.15;
}

} // namespace solarcore::pv

#endif // SOLARCORE_PV_CELL_HPP
