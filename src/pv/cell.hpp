/**
 * @file
 * Single-diode equivalent-circuit model of a photovoltaic cell
 * (paper Section 2.1, Figure 3).
 *
 * The cell is a photocurrent source in parallel with one diode plus a
 * series resistance Rs; shunt resistance is omitted as negligible,
 * exactly as the paper's "model of moderate complexity". The output
 * current at terminal voltage V solves the implicit equation
 *
 *   I = Iph(G,T) - I0(T) * (exp(q (V + I Rs) / (n k T)) - 1)
 *
 * with irradiance-proportional, temperature-corrected photocurrent and
 * the standard T^3 * exp(-Eg/kT) dark-saturation-current scaling.
 */

#ifndef SOLARCORE_PV_CELL_HPP
#define SOLARCORE_PV_CELL_HPP

namespace solarcore::pv {

/** Atmospheric operating condition of a panel. */
struct Environment
{
    double irradiance = 1000.0; //!< plane-of-array irradiance G [W/m^2]
    double cellTempC = 25.0;    //!< cell temperature [degrees Celsius]
};

/** Standard test conditions (STC) used for datasheet calibration. */
inline constexpr Environment kStc{1000.0, 25.0};

/** Electrical parameters of one cell, referenced to STC. */
struct CellParams
{
    double iscRef = 5.4;        //!< short-circuit current at STC [A]
    double vocRef = 0.6139;     //!< open-circuit voltage at STC [V]
    double alphaIsc = 0.00065;  //!< relative Isc temperature coeff [1/K]
    double idealityN = 1.30;    //!< diode ideality factor
    double seriesRes = 0.0;     //!< series resistance Rs [ohm]
    double bandgapEv = 1.12;    //!< silicon bandgap [eV]
};

/**
 * A single PV cell with the physics above.
 *
 * All voltages/currents are per cell; PvModule scales to the
 * series-parallel arrangement.
 */
class SolarCell
{
  public:
    explicit SolarCell(const CellParams &params);

    const CellParams &params() const { return params_; }

    /** Light-generated current Iph at the given condition [A]. */
    double photoCurrent(const Environment &env) const;

    /** Diode dark saturation current I0 at cell temperature [A]. */
    double saturationCurrent(double cell_temp_c) const;

    /**
     * Output current at terminal voltage @p v [V].
     *
     * Solves the implicit diode equation by damped Newton iteration;
     * monotone decreasing in v, so the solve is globally convergent.
     * Negative results (v beyond Voc) are returned as-is so callers can
     * detect reverse bias; clamp at the call site when modelling a
     * blocking diode.
     */
    double currentAt(double v, const Environment &env) const;

    /** Open-circuit voltage at the given condition [V]. */
    double openCircuitVoltage(const Environment &env) const;

    /** Short-circuit current at the given condition [A]. */
    double shortCircuitCurrent(const Environment &env) const;

    /** Thermal voltage n*k*T/q at the given cell temperature [V]. */
    double thermalVoltage(double cell_temp_c) const;

  private:
    CellParams params_;
    double i0Ref_; //!< saturation current at STC, from Voc/Isc calibration
};

/** Convert Celsius to Kelvin. */
constexpr double
kelvin(double celsius)
{
    return celsius + 273.15;
}

} // namespace solarcore::pv

#endif // SOLARCORE_PV_CELL_HPP
