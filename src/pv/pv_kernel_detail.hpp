/**
 * @file
 * Lane-level implementation of the batched PV kernels.
 *
 * Everything here is a header-only template over a small vector
 * backend `V` so the portable and AVX2 translation units compile the
 * *same* math at different widths:
 *
 *   - VecScalar (below): Reg = double, width 1. The lane loop becomes
 *     straight-line arithmetic + integer bit manipulation with no libm
 *     calls, which is exactly the shape compilers can autovectorize
 *     for whatever ISA the baseline build targets (SSE2, NEON, ...).
 *   - VecAvx2 (pv_kernel_avx2.cpp): Reg = __m256d, width 4, compiled
 *     with -mavx2 -mfma in its own TU behind runtime CPUID dispatch.
 *
 * The transcendentals are implemented on the backend primitives:
 * exp via the Cephes-style rational on the reduced argument with a
 * 2^k exponent splice, log via mantissa/exponent decomposition and the
 * atanh(s) odd series (|s| <= sqrt(2)-1 after normalization), and
 * W0(exp(y)) -- the diode solve's workhorse -- via Newton on
 * w + log w = y from seeds chosen to sit *below* the root, where the
 * concave iteration converges monotonically (w never leaves (0, w*],
 * so log w is always defined). Relative error is ~1e-15, far inside
 * the golden-comparison tolerances; exact special cases (dark lanes,
 * Rs = 0) are routed to the scalar formulas by the dispatch layer and
 * never reach these loops.
 *
 * Determinism: lane math is elementwise, iteration counts are fixed
 * (no data-dependent early exit), and no lane reads another lane, so
 * results are independent of batch size and lane position by
 * construction -- the property test in tests/pv/batch_kernel_test.cpp
 * asserts this bitwise.
 */

#ifndef SOLARCORE_PV_PV_KERNEL_DETAIL_HPP
#define SOLARCORE_PV_PV_KERNEL_DETAIL_HPP

#include <cmath>
#include <cstdint>
#include <cstring>

#include "pv/cell.hpp"

namespace solarcore::pv::detail {

/** Environment-independent constants hoisted out of the lane loops. */
struct CellConsts
{
    double iscRef;   //!< short-circuit current at STC [A]
    double alphaIsc; //!< relative Isc temperature coefficient [1/K]
    double rs;       //!< series resistance [ohm]
    double i0Ref;    //!< saturation current at STC [A]
    double nkOverQ;  //!< idealityN * k / q: Vt = nkOverQ * T_kelvin [V/K]
    double egOverNk; //!< Eg q / (n k) [K]
    double tRefK;    //!< STC cell temperature [K]

    static CellConsts from(const SolarCell &cell);
};

/** Scalar backend: one lane, plain double arithmetic. */
struct VecScalar
{
    static constexpr int width = 1;
    using Reg = double;
    using Mask = bool;

    static Reg bcast(double x) { return x; }
    static Reg load(const double *p) { return *p; }
    static void store(double *p, Reg x) { *p = x; }
    static Reg min(Reg a, Reg b) { return a < b ? a : b; }
    static Reg max(Reg a, Reg b) { return a > b ? a : b; }
    static Mask cmpGt(Reg a, Reg b) { return a > b; }
    static Mask cmpLe(Reg a, Reg b) { return a <= b; }
    static Mask cmpGe(Reg a, Reg b) { return a >= b; }
    static Mask maskOr(Mask a, Mask b) { return a || b; }
    static Reg select(Mask m, Reg a, Reg b) { return m ? a : b; }

    /**
     * a * b + c. Deliberately NOT std::fma here: both kernel TUs build
     * with -ffp-contract=off, so this is a plain mul + add everywhere
     * a lane can be evaluated, keeping results independent of batch
     * position. The AVX2 backend overrides it with a true fused
     * _mm256_fmadd_pd -- also position-independent, since it is fused
     * unconditionally.
     */
    static Reg mulAdd(Reg a, Reg b, Reg c) { return a * b + c; }

    static Reg
    roundNearest(Reg x)
    {
        // Round-half-away ties never occur for x = y*log2(e) at the
        // precision that matters; the +/-0.5 shift keeps this branch-
        // free and autovectorizable (std::nearbyint would not be).
        return x >= 0.0 ? std::floor(x + 0.5) : std::ceil(x - 0.5);
    }

    /** 2^k for integer-valued k in [-1022, 1023], by exponent splice. */
    static Reg
    pow2i(Reg k)
    {
        const std::int64_t bits =
            (static_cast<std::int64_t>(k) + 1023) << 52;
        Reg r;
        std::memcpy(&r, &bits, sizeof(r));
        return r;
    }

    /** Decompose finite x > 0 as m * 2^e with m in [1, 2). */
    static void
    frexpParts(Reg x, Reg *m, Reg *e)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &x, sizeof(bits));
        const std::int64_t raw_exp =
            static_cast<std::int64_t>((bits >> 52) & 0x7ff);
        *e = static_cast<double>(raw_exp - 1023);
        const std::uint64_t mant_bits =
            (bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL;
        std::memcpy(m, &mant_bits, sizeof(*m));
    }
};

// --- shared transcendental kernels (templated on the backend) -------

/**
 * exp(x) for x in [-700, 700] (clamped), ~1 ulp: Cephes rational on
 * the ln2-reduced argument, exponent spliced back by pow2i.
 */
template <typename V>
typename V::Reg
vExp(typename V::Reg x)
{
    using R = typename V::Reg;
    const R hi = V::bcast(700.0);
    const R lo = V::bcast(-700.0);
    x = V::min(V::max(x, lo), hi);

    const R log2e = V::bcast(1.4426950408889634074);
    const R neg_ln2_hi = V::bcast(-6.93145751953125e-1);
    const R neg_ln2_lo = V::bcast(-1.42860682030941723212e-6);
    const R k = V::roundNearest(x * log2e);
    R r = V::mulAdd(k, neg_ln2_hi, x);
    r = V::mulAdd(k, neg_ln2_lo, r);

    const R z = r * r;
    // exp(r) = 1 + 2 r P(z) / (Q(z) - r P(z)), Cephes expml coefficients.
    R p = V::bcast(1.26177193074810590878e-4);
    p = V::mulAdd(p, z, V::bcast(3.02994407707441961300e-2));
    p = V::mulAdd(p, z, V::bcast(9.99999999999999999910e-1));
    R q = V::bcast(3.00198505138664455042e-6);
    q = V::mulAdd(q, z, V::bcast(2.52448340349684104192e-3));
    q = V::mulAdd(q, z, V::bcast(2.27265548208155028766e-1));
    q = V::mulAdd(q, z, V::bcast(2.00000000000000000005e0));
    const R rp = r * p;
    const R er = V::bcast(1.0) + (rp + rp) / (q - rp);
    return er * V::pow2i(k);
}

/**
 * log(x) for finite x > 0, ~1-2 ulp: x = m 2^e with m renormalized to
 * [sqrt(2)/2, sqrt(2)), then log m = 2 atanh(s) with s = (m-1)/(m+1)
 * (|s| <= sqrt(2)-1 / sqrt(2)+1 ~= 0.172) by its odd series.
 */
template <typename V>
typename V::Reg
vLog(typename V::Reg x)
{
    using R = typename V::Reg;
    R m, e;
    V::frexpParts(x, &m, &e);
    // Renormalize so s stays small on both sides of 1.
    const auto big = V::cmpGt(m, V::bcast(1.4142135623730951));
    m = V::select(big, m * V::bcast(0.5), m);
    e = V::select(big, e + V::bcast(1.0), e);

    const R one = V::bcast(1.0);
    const R s = (m - one) / (m + one);
    const R z = s * s;
    // atanh(s)/s - 1 = z/3 + z^2/5 + ... ; z <= 0.0295 so ten terms
    // reach ~1e-16 relative.
    R t = V::bcast(1.0 / 19.0);
    t = V::mulAdd(t, z, V::bcast(1.0 / 17.0));
    t = V::mulAdd(t, z, V::bcast(1.0 / 15.0));
    t = V::mulAdd(t, z, V::bcast(1.0 / 13.0));
    t = V::mulAdd(t, z, V::bcast(1.0 / 11.0));
    t = V::mulAdd(t, z, V::bcast(1.0 / 9.0));
    t = V::mulAdd(t, z, V::bcast(1.0 / 7.0));
    t = V::mulAdd(t, z, V::bcast(1.0 / 5.0));
    t = V::mulAdd(t, z, V::bcast(1.0 / 3.0));

    const R ln2_hi = V::bcast(6.93145751953125e-1);
    const R ln2_lo = V::bcast(1.42860682030941723212e-6);
    const R two_s = s + s;
    // Sum smallest-first so the e*ln2_hi + 2s leading terms dominate.
    return V::mulAdd(e, ln2_hi,
                     two_s + V::mulAdd(two_s * z, t, e * ln2_lo));
}

/** log1p(x) for x > -1 via the u = 1 + x rounding correction. */
template <typename V>
typename V::Reg
vLog1p(typename V::Reg x)
{
    using R = typename V::Reg;
    const R one = V::bcast(1.0);
    const R u = one + x;
    const R d = u - one; // the part of x that survived the rounding
    // log1p(x) = log(u) * x / (u - 1) exactly compensates the rounding
    // of u; guard the u == 1 (x ~ 0) lane where d underflows to 0.
    const auto exact = V::cmpLe(V::max(d, V::bcast(0.0) - d), V::bcast(0.0));
    const R ratio = x / V::select(exact, one, d);
    return V::select(exact, x, vLog<V>(u) * ratio);
}

/**
 * W0(exp(y)): the w > 0 solving w + log w = y, any real y (clamped at
 * -700 where w ~ e^y underflows anyway).
 *
 * Both seeds sit below the root -- y - log y for y > 1 (the scalar
 * path's asymptote) and e^y/(1+e^y) otherwise (second-order accurate
 * for y << 0, provably below the root for all y) -- so the Newton
 * iteration on the concave g(w) = w + log w - y increases monotonically
 * and w never leaves (0, w*]. Eight fixed iterations reach ~1e-16
 * relative from either seed; no early exit, for lane determinism.
 */
template <typename V>
typename V::Reg
vW0exp(typename V::Reg y)
{
    using R = typename V::Reg;
    const R one = V::bcast(1.0);
    y = V::max(y, V::bcast(-700.0));

    const auto asym = V::cmpGt(y, one);
    const R seed_hi = y - vLog<V>(V::max(y, one));
    const R ey = vExp<V>(V::min(y, one));
    const R seed_lo = ey / (one + ey);
    R w = V::select(asym, seed_hi, seed_lo);

    for (int it = 0; it < 8; ++it) {
        const R g = w + vLog<V>(w) - y;
        w = w - g * w / (w + one);
    }
    return w;
}

/** Per-lane derived environment constants (all G lanes must be > 0). */
template <typename V>
struct EnvLanes
{
    typename V::Reg vt;   //!< thermal voltage [V]
    typename V::Reg iph;  //!< photocurrent [A]
    typename V::Reg i0;   //!< saturation current [A]
    typename V::Reg a;    //!< iph + i0 [A]
    typename V::Reg l1p;  //!< log1p(iph / i0)
    typename V::Reg voc;  //!< open-circuit voltage [V]
};

template <typename V>
EnvLanes<V>
prepareEnv(const CellConsts &c, typename V::Reg g, typename V::Reg t)
{
    using R = typename V::Reg;
    EnvLanes<V> env;
    const R tk = t + V::bcast(273.15);
    env.vt = V::bcast(c.nkOverQ) * tk;
    env.iph = V::bcast(c.iscRef * (1.0 / 1000.0)) * g *
        (V::bcast(1.0) + V::bcast(c.alphaIsc) * (t - V::bcast(25.0)));
    const R ratio = tk * V::bcast(1.0 / c.tRefK);
    env.i0 = V::bcast(c.i0Ref) * ratio * ratio * ratio *
        vExp<V>(V::bcast(c.egOverNk) *
                (V::bcast(1.0 / c.tRefK) - V::bcast(1.0) / tk));
    env.a = env.iph + env.i0;
    env.l1p = vLog1p<V>(env.iph / env.i0);
    env.voc = env.vt * env.l1p;
    return env;
}

/**
 * One lane group of the batched I-V evaluation (light lanes, Rs > 0):
 * I = A - (Vt/Rs) W, dI/dV = -W / (Rs (1 + W)), with the Lambert
 * argument carried in log space exactly like the scalar path.
 */
template <typename V>
void
evalIvLanes(const CellConsts &c, typename V::Reg g, typename V::Reg t,
            typename V::Reg v, typename V::Reg *i_out,
            typename V::Reg *di_out)
{
    using R = typename V::Reg;
    const EnvLanes<V> env = prepareEnv<V>(c, g, t);
    const R rs = V::bcast(c.rs);
    const R log_c = vLog<V>(env.i0 * rs / env.vt) + env.a * rs / env.vt;
    const R w = vW0exp<V>(log_c + v / env.vt);
    *i_out = env.a - w * env.vt / rs;
    *di_out = V::bcast(0.0) - w / (rs * (V::bcast(1.0) + w));
}

/**
 * One lane group of the batched cell MPP solve (light lanes, Rs > 0).
 *
 * Solves the same root as SolarCell::mppVoltage -- g(V) = I + V I' = 0
 * -- but parametrized by the Lambert variable w instead of V. Along
 * the I-V curve, V(w) = Vt (w + log w - logC) and I(w) = A - (Vt/Rs) w,
 * so one lane log per iteration replaces the full W0exp re-solve (which
 * itself costs eight logs) the V-space iteration would need:
 *
 *   h(w)  = I(w) + V(w) I'(V) = A - (Vt/Rs) w - V(w) w / (Rs (1 + w))
 *   h'(w) = -(2 Vt + V(w) / (1 + w)^2) / Rs
 *
 * The scalar path's seed (the Rs = 0 closed form shifted by the series
 * drop) is mapped into w-space with one cold Lambert solve; after that
 * the bracketed Newton runs a fixed 12 iterations (no early exit, for
 * lane determinism) with masked bracket updates. The lower bracket
 * w = 0 is a pure sentinel: h > 0 everywhere below the root, and its
 * value is never evaluated there. The upper bracket is exact:
 * I(w_hi) = 0 at w_hi = A Rs / Vt. V(w) is strictly increasing in w and
 * g is strictly decreasing in V on the bracket, so h keeps the one sign
 * change the bisection fallback needs; steps that escape the bracket
 * (or meet a non-negative h', possible only in the far sub-zero-volt
 * tail) are replaced by the bracket midpoint.
 */
template <typename V>
void
mppLanes(const CellConsts &c, typename V::Reg g, typename V::Reg t,
         typename V::Reg *v_out, typename V::Reg *i_out)
{
    using R = typename V::Reg;
    const R zero = V::bcast(0.0);
    const R one = V::bcast(1.0);
    const EnvLanes<V> env = prepareEnv<V>(c, g, t);
    const R rs = V::bcast(c.rs);
    const R inv_vt = one / env.vt;
    const R s = env.vt / rs;
    const R log_c = vLog<V>(env.i0 * rs * inv_vt) + env.a * rs * inv_vt;

    const R v0 = env.vt * (vW0exp<V>(one + env.l1p) - one);
    const R v_seed =
        V::min(V::max(v0 - env.iph * rs, zero), env.voc);
    R w = vW0exp<V>(log_c + v_seed * inv_vt);

    R lo = zero;
    R hi = env.a * rs * inv_vt;

    for (int it = 0; it < 12; ++it) {
        const R v = env.vt * (w + vLog<V>(w) - log_c);
        const R opw = one + w;
        const R h = env.a - s * w - v * w / (rs * opw);
        const R dh = zero - (env.vt + env.vt + v / (opw * opw)) / rs;

        const auto left = V::cmpGt(h, zero);
        lo = V::select(left, w, lo);
        hi = V::select(left, hi, w);

        R next = w - h / dh;
        const R mid = V::bcast(0.5) * (lo + hi);
        auto escaped =
            V::maskOr(V::cmpLe(next, lo), V::cmpGe(next, hi));
        escaped = V::maskOr(escaped, V::cmpGe(dh, zero));
        // A vanishing Newton step means w already sits on the root;
        // keep it even when it grazes the freshly tightened bracket
        // edge (same converged-before-escape order as the scalar
        // refineMppVoltage, which would otherwise bisect away from an
        // already-converged lane).
        const R step = next - w;
        const auto converged =
            V::cmpLe(V::max(step, zero - step),
                     V::bcast(1e-15) * (one + V::max(w, zero - w)));
        w = V::select(converged, next, V::select(escaped, mid, next));
    }

    *v_out = env.vt * (w + vLog<V>(w) - log_c);
    *i_out = V::max(zero, env.a - s * w);
}

// --- per-TU batch entry points --------------------------------------
//
// Inputs are SoA lane arrays with every lane sanitized by the dispatch
// layer: G > 0 and Rs > 0 (dark and Rs = 0 lanes take the exact scalar
// formulas there and never reach these). Each implementation pads the
// remainder internally, so n may be any length.

void evalIvBatchPortable(const CellConsts &c, const double *g,
                         const double *t, const double *v, std::size_t n,
                         double *i_out, double *di_out);
void mppBatchPortable(const CellConsts &c, const double *g, const double *t,
                      std::size_t n, double *v_out, double *i_out);

#ifdef SOLARCORE_HAVE_AVX2
void evalIvBatchAvx2(const CellConsts &c, const double *g, const double *t,
                     const double *v, std::size_t n, double *i_out,
                     double *di_out);
void mppBatchAvx2(const CellConsts &c, const double *g, const double *t,
                  std::size_t n, double *v_out, double *i_out);
#endif

/** Shared lane-loop driver: pads the tail to a full lane group. */
template <typename V>
void
evalIvBatchImpl(const CellConsts &c, const double *g, const double *t,
                const double *v, std::size_t n, double *i_out,
                double *di_out)
{
    constexpr std::size_t W = static_cast<std::size_t>(V::width);
    std::size_t k = 0;
    for (; k + W <= n; k += W) {
        typename V::Reg iv, di;
        evalIvLanes<V>(c, V::load(g + k), V::load(t + k), V::load(v + k),
                       &iv, &di);
        V::store(i_out + k, iv);
        V::store(di_out + k, di);
    }
    if (k < n) {
        double gp[W], tp[W], vp[W], ip[W], dp[W];
        for (std::size_t j = 0; j < W; ++j) {
            const std::size_t src = k + j < n ? k + j : n - 1;
            gp[j] = g[src];
            tp[j] = t[src];
            vp[j] = v[src];
        }
        typename V::Reg iv, di;
        evalIvLanes<V>(c, V::load(gp), V::load(tp), V::load(vp), &iv, &di);
        V::store(ip, iv);
        V::store(dp, di);
        for (std::size_t j = 0; k + j < n; ++j) {
            i_out[k + j] = ip[j];
            di_out[k + j] = dp[j];
        }
    }
}

template <typename V>
void
mppBatchImpl(const CellConsts &c, const double *g, const double *t,
             std::size_t n, double *v_out, double *i_out)
{
    constexpr std::size_t W = static_cast<std::size_t>(V::width);
    std::size_t k = 0;
    for (; k + W <= n; k += W) {
        typename V::Reg vm, im;
        mppLanes<V>(c, V::load(g + k), V::load(t + k), &vm, &im);
        V::store(v_out + k, vm);
        V::store(i_out + k, im);
    }
    if (k < n) {
        double gp[W], tp[W], vp[W], ip[W];
        for (std::size_t j = 0; j < W; ++j) {
            const std::size_t src = k + j < n ? k + j : n - 1;
            gp[j] = g[src];
            tp[j] = t[src];
        }
        typename V::Reg vm, im;
        mppLanes<V>(c, V::load(gp), V::load(tp), &vm, &im);
        V::store(vp, vm);
        V::store(ip, im);
        for (std::size_t j = 0; k + j < n; ++j) {
            v_out[k + j] = vp[j];
            i_out[k + j] = ip[j];
        }
    }
}

} // namespace solarcore::pv::detail

#endif // SOLARCORE_PV_PV_KERNEL_DETAIL_HPP
