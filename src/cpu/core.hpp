/**
 * @file
 * One simulated core: a benchmark instance advancing through its
 * phases, an assigned DVFS level (or power-gated state), and accessors
 * the power-management policies use to evaluate "what would this core
 * consume / deliver at level L" (the throughput-power ratio inputs of
 * paper Section 4.3).
 */

#ifndef SOLARCORE_CPU_CORE_HPP
#define SOLARCORE_CPU_CORE_HPP

#include <cstdint>

#include "cpu/dvfs.hpp"
#include "cpu/perf_model.hpp"
#include "cpu/power_model.hpp"
#include "cpu/profile.hpp"
#include "util/random.hpp"

namespace solarcore::cpu {

/** A single core with a running benchmark and a DVFS state. */
class Core
{
  public:
    /**
     * @param id      core index within the chip
     * @param table   shared DVFS table (must outlive the core)
     * @param perf    shared performance model
     * @param power   shared power model
     * @param profile benchmark to run (copied; phase playback is
     *                per-core, offset by @p seed so identical programs
     *                on different cores decorrelate)
     * @param seed    deterministic phase-jitter seed
     */
    Core(int id, const DvfsTable &table, const PerfModel &perf,
         const PowerModel &power, BenchmarkProfile profile,
         std::uint64_t seed);

    int id() const { return id_; }
    const std::string &benchmarkName() const { return profile_.name; }
    const BenchmarkProfile &profile() const { return profile_; }

    /** Current DVFS level (0 = slowest). Meaningless while gated. */
    int level() const { return level_; }
    void setLevel(int level);

    bool gated() const { return gated_; }

    void
    setGated(bool gated)
    {
        if (gated != gated_)
            ++gateTransitions_;
        gated_ = gated;
    }

    /**
     * Lifetime state-change ledgers (the observability layer surfaces
     * them as chip.core.dvfsTransitions / .gateTransitions): every
     * effective level change and every gate/ungate, including steps a
     * tracking event applies and then reverts -- on hardware those are
     * real VID transitions too.
     */
    std::uint64_t dvfsTransitions() const { return dvfsTransitions_; }
    std::uint64_t gateTransitions() const { return gateTransitions_; }

    void setDieTempC(double t) { dieTempC_ = t; }
    double dieTempC() const { return dieTempC_; }

    /** The phase the core is currently executing. */
    const PhaseProfile &currentPhase() const;

    /** Performance estimate at the current level and phase. */
    PerfEstimate perf() const;

    /** Power estimate at the current level and phase. */
    PowerEstimate power() const;

    /** Committed instructions per second at the current state. */
    double throughput() const;

    /** What-if queries used by the load-adaptation policies. */
    double powerAtLevel(int level) const;
    double throughputAtLevel(int level) const;

    /**
     * Advance wall-clock time: move the phase playback forward and
     * accumulate retired instructions and consumed energy at the
     * current operating point.
     */
    void step(double seconds);

    /**
     * Exchange the running programs of two cores (thread motion,
     * paper reference [36]): benchmark identity and phase playback
     * move with the program; DVFS state and the retirement/energy
     * ledgers stay with the core.
     */
    static void swapWorkloads(Core &a, Core &b);

    double instructionsRetired() const { return instructions_; }
    double energyJoules() const { return energy_; }

  private:
    PerfEstimate perfAtLevel(int level) const;

    int id_;
    const DvfsTable *table_;
    const PerfModel *perfModel_;
    const PowerModel *powerModel_;
    BenchmarkProfile profile_;

    int level_ = 0;
    bool gated_ = false;
    double dieTempC_ = 50.0;
    std::uint64_t dvfsTransitions_ = 0;
    std::uint64_t gateTransitions_ = 0;

    std::size_t phaseIndex_ = 0;
    double phaseElapsed_ = 0.0;      //!< seconds into the current phase
    std::vector<double> phaseDur_;   //!< jittered per-phase durations

    double instructions_ = 0.0;
    double energy_ = 0.0;
};

} // namespace solarcore::cpu

#endif // SOLARCORE_CPU_CORE_HPP
