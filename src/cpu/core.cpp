#include "core.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"

namespace solarcore::cpu {

Core::Core(int id, const DvfsTable &table, const PerfModel &perf,
           const PowerModel &power, BenchmarkProfile profile,
           std::uint64_t seed)
    : id_(id), table_(&table), perfModel_(&perf), powerModel_(&power),
      profile_(std::move(profile)), level_(table.maxLevel())
{
    SC_ASSERT(!profile_.phases.empty(), "Core: benchmark has no phases");

    // Jitter phase durations +-20% and start at a random point of the
    // playback so co-scheduled copies of one program decorrelate.
    Rng rng(seed);
    Rng jitter = rng.fork(static_cast<std::uint64_t>(id) + 17);
    phaseDur_.reserve(profile_.phases.size());
    double total = 0.0;
    for (const auto &ph : profile_.phases) {
        const double d = ph.durationSec * jitter.uniform(0.8, 1.2);
        phaseDur_.push_back(d);
        total += d;
    }
    double offset = jitter.uniform(0.0, total);
    while (offset > phaseDur_[phaseIndex_]) {
        offset -= phaseDur_[phaseIndex_];
        phaseIndex_ = (phaseIndex_ + 1) % phaseDur_.size();
    }
    phaseElapsed_ = offset;
}

void
Core::setLevel(int level)
{
    SC_ASSERT(level >= table_->minLevel() && level <= table_->maxLevel(),
              "Core::setLevel: level out of range: ", level);
    if (level != level_)
        ++dvfsTransitions_;
    level_ = level;
}

const PhaseProfile &
Core::currentPhase() const
{
    return profile_.phases[phaseIndex_];
}

PerfEstimate
Core::perfAtLevel(int level) const
{
    return perfModel_->evaluate(currentPhase(), table_->frequency(level));
}

PerfEstimate
Core::perf() const
{
    if (gated_)
        return PerfEstimate{};
    return perfAtLevel(level_);
}

PowerEstimate
Core::power() const
{
    if (gated_)
        return powerModel_->gatedPower();
    return powerModel_->evaluate(currentPhase(), perfAtLevel(level_),
                                 table_->voltage(level_),
                                 table_->frequency(level_), dieTempC_);
}

double
Core::throughput() const
{
    if (gated_)
        return 0.0;
    return perfAtLevel(level_).throughput(table_->frequency(level_));
}

double
Core::powerAtLevel(int level) const
{
    return powerModel_
        ->evaluate(currentPhase(), perfAtLevel(level),
                   table_->voltage(level), table_->frequency(level),
                   dieTempC_)
        .totalW();
}

double
Core::throughputAtLevel(int level) const
{
    return perfAtLevel(level).throughput(table_->frequency(level));
}

void
Core::step(double seconds)
{
    SC_ASSERT(seconds >= 0.0, "Core::step: negative time");
    double remaining = seconds;
    while (remaining > 0.0) {
        const double in_phase =
            std::min(remaining, phaseDur_[phaseIndex_] - phaseElapsed_);
        if (!gated_) {
            instructions_ += throughput() * in_phase;
            energy_ += power().totalW() * in_phase;
        } else {
            energy_ += powerModel_->gatedPower().totalW() * in_phase;
        }
        phaseElapsed_ += in_phase;
        remaining -= in_phase;
        if (phaseElapsed_ >= phaseDur_[phaseIndex_] - 1e-12) {
            phaseElapsed_ = 0.0;
            phaseIndex_ = (phaseIndex_ + 1) % phaseDur_.size();
        }
    }
}

void
Core::swapWorkloads(Core &a, Core &b)
{
    std::swap(a.profile_, b.profile_);
    std::swap(a.phaseDur_, b.phaseDur_);
    std::swap(a.phaseIndex_, b.phaseIndex_);
    std::swap(a.phaseElapsed_, b.phaseElapsed_);
}

} // namespace solarcore::cpu
