/**
 * @file
 * Workload characterization structures consumed by the performance and
 * power models.
 *
 * A benchmark is described by a small set of interval-model inputs per
 * execution phase, calibrated (in src/workload) so that the simulated
 * IPC and energy-per-instruction of the 12 SPEC2000 programs land in
 * the paper's EPI categories (Table 5). These profiles substitute for
 * reference-input cycle simulation; DESIGN.md section 3 records the
 * substitution rationale.
 */

#ifndef SOLARCORE_CPU_PROFILE_HPP
#define SOLARCORE_CPU_PROFILE_HPP

#include <string>
#include <vector>

namespace solarcore::cpu {

/** Interval-model inputs for one execution phase. */
struct PhaseProfile
{
    /** Dependency-limited IPC with perfect caches/branches. */
    double ilp = 2.0;
    /** Branch mispredictions per kilo-instruction. */
    double branchMpki = 4.0;
    /** L1D misses per kilo-instruction (hit in L2). */
    double l1MissPerKi = 10.0;
    /** L2 misses per kilo-instruction (go to memory). */
    double l2MissPerKi = 1.0;
    /**
     * Frequency-invariant stall cycles per instruction: dependency
     * chains, TLB walks, structural hazards and other in-core stalls
     * that scale with the clock.
     */
    double stallCpi = 0.3;
    /** Memory-level parallelism: overlapping outstanding misses. */
    double mlp = 1.5;
    /** Fraction of instructions that are floating point. */
    double fpFraction = 0.1;
    /** Fraction of instructions that are loads/stores. */
    double memFraction = 0.35;
    /** Datapath switching-activity scale (calibrated, see workload). */
    double activityScale = 1.0;
    /** Phase dwell time at nominal frequency [seconds]. */
    double durationSec = 60.0;
};

/** A named benchmark: a repeating sequence of phases. */
struct BenchmarkProfile
{
    std::string name;
    std::vector<PhaseProfile> phases;

    /** The paper's EPI class boundaries [nJ/instruction]. */
    static constexpr double kHighEpiNj = 15.0;
    static constexpr double kLowEpiNj = 8.0;
};

/** Paper Table 5 EPI classes. */
enum class EpiClass { High, Moderate, Low };

/** Classify a measured EPI [nJ] per the paper's thresholds. */
constexpr EpiClass
classifyEpi(double epi_nj)
{
    if (epi_nj >= BenchmarkProfile::kHighEpiNj)
        return EpiClass::High;
    if (epi_nj <= BenchmarkProfile::kLowEpiNj)
        return EpiClass::Low;
    return EpiClass::Moderate;
}

} // namespace solarcore::cpu

#endif // SOLARCORE_CPU_PROFILE_HPP
