#include "cacti_lite.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace solarcore::cpu {

namespace {

/*
 * Fitted first-order constants. These lump cell, wire and peripheral
 * capacitance into per-cell effective values chosen so that 90 nm
 * reference points land near published CACTI numbers: a 64 KB 4-way
 * L1 reads at ~0.6 nJ, a 2 MB 8-way L2 at ~3 nJ, and a ~100-entry
 * register array at tens of pJ.
 */
constexpr double kWordlineFPerCell = 6e-15;   // [F]
constexpr double kSenseFPerColumn = 25e-15;   // [F]
constexpr double kBitlineFPerCell = 7e-15;    // [F]
constexpr double kTreeFPerSqrtBit = 120e-15;  // [F]
constexpr double kReadSwingFraction = 0.15;   // bitline swing on reads
constexpr double kDecodeOverhead = 0.10;      // fraction of array energy
constexpr double kLeakAPerBit = 2e-9;         // [A] at 1.45 V, 90 nm
constexpr int kMaxBankRows = 64;

} // namespace

SramEnergy
estimateSram(const SramGeometry &geometry, double feature_nm, double vdd)
{
    SC_ASSERT(geometry.sizeBytes > 0 && geometry.lineBytes > 0 &&
                  geometry.assoc > 0,
              "estimateSram: bad geometry");
    SramEnergy out;

    const double bits = geometry.sizeBytes * 8.0;
    // One access activates the full set: line * ways.
    const double cols_read = geometry.lineBytes * 8.0 * geometry.assoc;
    const double rows_total = std::max(1.0, bits / cols_read);
    const double rows_bank = std::min<double>(kMaxBankRows, rows_total);

    // Feature scaling: capacitance shrinks linearly with feature size.
    const double tech = feature_nm / 90.0;
    const double v_sq = vdd * vdd;

    // Extra ports grow the cell and add wire.
    const double extra_ports =
        std::max(0, geometry.readPorts + geometry.writePorts - 2);
    const double port_factor = 1.0 + 0.25 * extra_ports;

    const double c_wl_sense =
        cols_read * (kWordlineFPerCell + kSenseFPerColumn) * tech;
    const double c_bl = cols_read * rows_bank * kBitlineFPerCell * tech;
    const double c_tree = std::sqrt(bits) * kTreeFPerSqrtBit * tech;

    const double read_j = (c_wl_sense + c_bl * kReadSwingFraction +
                           c_tree) *
        v_sq * (1.0 + kDecodeOverhead) * port_factor;
    const double write_j = (c_wl_sense + c_bl + c_tree) * v_sq *
        (1.0 + kDecodeOverhead) * port_factor;

    out.readNj = read_j * 1e9;
    out.writeNj = write_j * 1e9;
    out.leakageW = bits * kLeakAPerBit * vdd * (v_sq / (1.45 * 1.45)) *
        port_factor;
    return out;
}

EnergyParams
deriveEnergyParams(const CoreConfig &config, double feature_nm, double vdd)
{
    EnergyParams ep;
    ep.nominalVoltage = vdd;

    const double width_scale = config.fetchWidth / 4.0;

    // Instruction cache: one line feeds fetchWidth instructions.
    SramGeometry icache;
    icache.sizeBytes = config.l1SizeKb * 1024;
    icache.assoc = config.l1Assoc;
    icache.lineBytes = config.l1LineBytes;
    const auto icache_e = estimateSram(icache, feature_nm, vdd);

    // Branch predictor + BTB: small 2-byte-entry arrays.
    SramGeometry bpred;
    bpred.sizeBytes = config.branchPredictorEntries * 2 +
        config.btbEntries * 8;
    bpred.assoc = 1;
    bpred.lineBytes = 8;
    const auto bpred_e = estimateSram(bpred, feature_nm, vdd);

    // Decode/rename logic: fitted constant per instruction.
    const double decode_nj = 0.18 * width_scale;
    ep.frontendNj = icache_e.readNj / config.fetchWidth + bpred_e.readNj +
        decode_nj;

    // Out-of-order window: issue-queue CAM (wakeup comparators add a
    // 1.5x energy factor over a plain array) plus ROB write and
    // commit read.
    SramGeometry iq;
    iq.sizeBytes = config.issueQueueEntries * 8;
    iq.assoc = 1;
    iq.lineBytes = 8;
    iq.readPorts = config.issueWidth;
    iq.writePorts = config.issueWidth;
    const auto iq_e = estimateSram(iq, feature_nm, vdd);

    SramGeometry rob;
    rob.sizeBytes = config.robEntries * 16;
    rob.assoc = 1;
    rob.lineBytes = 16;
    rob.readPorts = config.commitWidth;
    rob.writePorts = config.fetchWidth;
    const auto rob_e = estimateSram(rob, feature_nm, vdd);
    ep.windowNj = 1.5 * iq_e.readNj + rob_e.readNj + rob_e.writeNj;

    // Register file: two reads + one write per instruction.
    SramGeometry regfile;
    regfile.sizeBytes = 128 * 8;
    regfile.assoc = 1;
    regfile.lineBytes = 8;
    regfile.readPorts = 2 * config.issueWidth;
    regfile.writePorts = config.issueWidth;
    const auto rf_e = estimateSram(regfile, feature_nm, vdd);
    ep.regfileNj = 2.0 * rf_e.readNj + rf_e.writeNj;

    // Function units: fitted logic constants, width-scaled.
    ep.intAluNj = 0.45 * width_scale;
    ep.fpAluNj = 1.10 * width_scale;

    // LSQ CAM + data cache access per memory instruction.
    SramGeometry lsq;
    lsq.sizeBytes = config.lsqEntries * 8;
    lsq.assoc = 1;
    lsq.lineBytes = 8;
    lsq.readPorts = 2;
    lsq.writePorts = 2;
    const auto lsq_e = estimateSram(lsq, feature_nm, vdd);

    SramGeometry dcache = icache; // Table 4: identical I/D L1s
    const auto dcache_e = estimateSram(dcache, feature_nm, vdd);
    ep.lsqDcacheNj = 2.0 * lsq_e.readNj + dcache_e.readNj;

    // Unified per-core L2.
    SramGeometry l2;
    l2.sizeBytes = config.l2SizeKb * 1024;
    l2.assoc = config.l2Assoc;
    l2.lineBytes = config.l2LineBytes;
    const auto l2_e = estimateSram(l2, feature_nm, vdd);
    ep.l2AccessNj = l2_e.readNj;

    // Clock tree: fitted constant scaled by machine width.
    ep.clockTreeNj = 0.95 * width_scale;

    // Leakage: array leakage plus a logic floor.
    ep.leakageAtNominalW = 1.2 + icache_e.leakageW + dcache_e.leakageW +
        l2_e.leakageW + iq_e.leakageW + rob_e.leakageW + lsq_e.leakageW +
        rf_e.leakageW + bpred_e.leakageW;
    return ep;
}

} // namespace solarcore::cpu
