/**
 * @file
 * First-order RC thermal model of a core's die temperature.
 *
 * The paper models temperature's effect on the PANEL in detail but
 * keeps die temperature implicit; we close the loop: core power heats
 * the die through a thermal resistance/capacitance pair, and the die
 * temperature feeds the power model's leakage term. The model is the
 * standard lumped RC: dT/dt = (P*R - (T - T_amb)) / (R*C), giving a
 * steady state of T_amb + P*R and an exponential time constant R*C.
 */

#ifndef SOLARCORE_CPU_THERMAL_HPP
#define SOLARCORE_CPU_THERMAL_HPP

namespace solarcore::cpu {

/** Lumped-RC die thermal model for one core. */
class ThermalModel
{
  public:
    /**
     * @param r_c_per_w  junction-to-ambient thermal resistance [C/W];
     *                   a 20 W core at 1.2 C/W settles 24 K above
     *                   ambient, typical for a 90 nm part with a
     *                   shared heatsink
     * @param c_j_per_c  thermal capacitance [J/C]; with R it sets the
     *                   time constant (default ~96 s)
     * @param initial_c  initial die temperature [C]
     */
    explicit ThermalModel(double r_c_per_w = 1.2, double c_j_per_c = 80.0,
                          double initial_c = 45.0);

    /** Current die temperature [C]. */
    double temperature() const { return tempC_; }

    /** Steady-state temperature for a constant power/ambient [C]. */
    double steadyState(double power_w, double ambient_c) const;

    /** Thermal time constant R*C [s]. */
    double timeConstant() const { return rTh_ * cTh_; }

    /**
     * Advance the die temperature by @p dt_sec under @p power_w of
     * dissipation at @p ambient_c, using the exact exponential update
     * (stable for any step size). Returns the new temperature.
     */
    double step(double power_w, double ambient_c, double dt_sec);

    /** Reset to a known temperature. */
    void reset(double temp_c) { tempC_ = temp_c; }

  private:
    double rTh_;
    double cTh_;
    double tempC_;
};

} // namespace solarcore::cpu

#endif // SOLARCORE_CPU_THERMAL_HPP
