#include "chip.hpp"

#include "util/logging.hpp"

namespace solarcore::cpu {

ChipConfig
defaultChipConfig()
{
    return ChipConfig{};
}

MultiCoreChip::MultiCoreChip(const ChipConfig &config, const DvfsTable &table,
                             const EnergyParams &energy,
                             std::vector<BenchmarkProfile> workload,
                             std::uint64_t seed)
    : config_(config), table_(table), perfModel_(config.core),
      powerModel_(energy)
{
    SC_ASSERT(static_cast<int>(workload.size()) == config.numCores,
              "MultiCoreChip: workload size ", workload.size(),
              " != core count ", config.numCores);
    cores_.reserve(workload.size());
    for (std::size_t i = 0; i < workload.size(); ++i) {
        cores_.emplace_back(static_cast<int>(i), table_, perfModel_,
                            powerModel_, std::move(workload[i]),
                            seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    }
}

Core &
MultiCoreChip::core(int i)
{
    SC_ASSERT(i >= 0 && i < numCores(), "MultiCoreChip: bad core ", i);
    return cores_[static_cast<std::size_t>(i)];
}

const Core &
MultiCoreChip::core(int i) const
{
    SC_ASSERT(i >= 0 && i < numCores(), "MultiCoreChip: bad core ", i);
    return cores_[static_cast<std::size_t>(i)];
}

double
MultiCoreChip::totalPower() const
{
    double w = 0.0;
    for (const auto &c : cores_)
        w += c.power().totalW();
    return w;
}

void
MultiCoreChip::setVrmModel(const VrmParams &params)
{
    vrmModel_.emplace(params);
}

void
MultiCoreChip::clearVrmModel()
{
    vrmModel_.reset();
}

double
MultiCoreChip::inputPower() const
{
    if (!vrmModel_)
        return totalPower();
    double w = 0.0;
    for (const auto &c : cores_)
        w += vrmModel_->inputPower(c.power().totalW());
    return w;
}

double
MultiCoreChip::totalThroughput() const
{
    double t = 0.0;
    for (const auto &c : cores_)
        t += c.throughput();
    return t;
}

void
MultiCoreChip::step(double seconds)
{
    for (auto &c : cores_)
        c.step(seconds);
}

double
MultiCoreChip::totalInstructions() const
{
    double n = 0.0;
    for (const auto &c : cores_)
        n += c.instructionsRetired();
    return n;
}

double
MultiCoreChip::totalEnergy() const
{
    double j = 0.0;
    for (const auto &c : cores_)
        j += c.energyJoules();
    return j;
}

std::uint64_t
MultiCoreChip::totalDvfsTransitions() const
{
    std::uint64_t n = 0;
    for (const auto &c : cores_)
        n += c.dvfsTransitions();
    return n;
}

std::uint64_t
MultiCoreChip::totalGateTransitions() const
{
    std::uint64_t n = 0;
    for (const auto &c : cores_)
        n += c.gateTransitions();
    return n;
}

std::vector<MultiCoreChip::CoreSetting>
MultiCoreChip::settings() const
{
    std::vector<CoreSetting> out;
    out.reserve(cores_.size());
    for (const auto &c : cores_)
        out.push_back({c.level(), c.gated()});
    return out;
}

void
MultiCoreChip::applySettings(const std::vector<CoreSetting> &settings)
{
    SC_ASSERT(settings.size() == cores_.size(),
              "applySettings: size mismatch");
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i].setLevel(settings[i].level);
        cores_[i].setGated(settings[i].gated);
    }
}

void
MultiCoreChip::setAllLevels(int level)
{
    for (auto &c : cores_) {
        c.setGated(false);
        c.setLevel(level);
    }
}

void
MultiCoreChip::gateAll()
{
    for (auto &c : cores_)
        c.setGated(true);
}

void
MultiCoreChip::swapWorkloads(int i, int j)
{
    SC_ASSERT(i >= 0 && i < numCores() && j >= 0 && j < numCores(),
              "swapWorkloads: bad core index");
    if (i != j)
        Core::swapWorkloads(cores_[static_cast<std::size_t>(i)],
                            cores_[static_cast<std::size_t>(j)]);
}

double
MultiCoreChip::minUngatedPower() const
{
    double w = 0.0;
    for (const auto &c : cores_)
        w += c.powerAtLevel(table_.minLevel());
    return w;
}

double
MultiCoreChip::maxPower() const
{
    double w = 0.0;
    for (const auto &c : cores_)
        w += c.powerAtLevel(table_.maxLevel());
    return w;
}

} // namespace solarcore::cpu
