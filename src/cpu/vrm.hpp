/**
 * @file
 * On-chip per-core voltage regulator module (paper Section 4.1: "we
 * use an on-chip voltage-regulator module (VRM) for each core",
 * citing Kim et al.'s fast per-core regulators).
 *
 * Models the two properties the power-management loop cares about:
 *
 *  - conversion efficiency as a function of load: buck regulators peak
 *    around mid-load and droop at light load where switching and
 *    control overheads dominate;
 *  - voltage transition time and energy: per-core DVFS notches are not
 *    free, though on-chip regulators make them fast (tens of mV/ns).
 *
 * The chip-level input power of a core is its consumed power divided
 * by the VRM efficiency at that load.
 */

#ifndef SOLARCORE_CPU_VRM_HPP
#define SOLARCORE_CPU_VRM_HPP

namespace solarcore::cpu {

/** Electrical characteristics of one per-core regulator. */
struct VrmParams
{
    double peakEfficiency = 0.90;  //!< best-case conversion efficiency
    double ratedPowerW = 30.0;     //!< load at which efficiency peaks
    double lightLoadPenalty = 0.12;//!< efficiency droop toward no load
    double slewVoltsPerUs = 0.02;  //!< output-voltage slew rate
    double transitionNjPerMv = 1.5;//!< energy per mV of output change
};

/** A per-core VRM. */
class Vrm
{
  public:
    explicit Vrm(const VrmParams &params = VrmParams());

    const VrmParams &params() const { return params_; }

    /**
     * Conversion efficiency at @p load_w of output power: peaks at the
     * rated load, droops toward light load, and degrades mildly above
     * rating (conduction losses).
     */
    double efficiencyAt(double load_w) const;

    /** Input power required to deliver @p load_w. */
    double inputPower(double load_w) const;

    /** Time to slew the output from @p v_from to @p v_to [seconds]. */
    double transitionSeconds(double v_from, double v_to) const;

    /** Energy dissipated by that transition [joules]. */
    double transitionJoules(double v_from, double v_to) const;

  private:
    VrmParams params_;
};

} // namespace solarcore::cpu

#endif // SOLARCORE_CPU_VRM_HPP
