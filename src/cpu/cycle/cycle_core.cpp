#include "cycle_core.hpp"

#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "util/logging.hpp"

namespace solarcore::cpu::cycle {

namespace {

constexpr std::uint64_t kNotDone = std::numeric_limits<std::uint64_t>::max();

} // namespace

CycleCore::CycleCore(const CoreConfig &config, double frequency_hz)
    : config_(config), frequencyHz_(frequency_hz)
{
    SC_ASSERT(frequency_hz > 0.0, "CycleCore: non-positive frequency");
    memCycles_ = static_cast<int>(
        std::lround(config_.memLatencyNs * 1e-9 * frequency_hz));
}

int
CycleCore::latencyOf(const TraceInstr &instr) const
{
    switch (instr.cls) {
      case InstrClass::IntAlu:
        return 1;
      case InstrClass::FpAlu:
        return 4;
      case InstrClass::Branch:
        return 1;
      case InstrClass::Store:
        // Stores retire from the LSQ; the pipeline sees L1 latency.
        return config_.l1LatencyCycles;
      case InstrClass::Load:
        switch (instr.memLevel) {
          case MemLevel::L1:
            return config_.l1LatencyCycles;
          case MemLevel::L2:
            return config_.l1LatencyCycles + config_.l2LatencyCycles;
          case MemLevel::Memory:
            return config_.l1LatencyCycles + config_.l2LatencyCycles +
                memCycles_;
        }
    }
    return 1;
}

CycleResult
CycleCore::run(const Trace &trace) const
{
    CycleResult res;
    if (trace.empty())
        return res;

    const std::size_t n = trace.size();
    // Absolute cycle at which each instruction's result is available.
    std::vector<std::uint64_t> done(n, kNotDone);

    struct RobEntry
    {
        std::size_t index;
        bool issued = false;
    };
    std::deque<RobEntry> rob;

    std::size_t next_fetch = 0;     //!< next trace index to fetch
    std::size_t committed = 0;
    std::uint64_t now = 0;
    std::uint64_t fetch_blocked_until = 0; //!< misprediction redirect

    while (committed < n) {
        // 1. Commit in order.
        int commits = 0;
        while (!rob.empty() && commits < config_.commitWidth) {
            const auto &head = rob.front();
            if (done[head.index] == kNotDone || done[head.index] > now)
                break;
            rob.pop_front();
            ++committed;
            ++commits;
        }

        // 2. Issue oldest-ready-first with unit constraints. Memory
        // operations additionally need a free LSQ slot: every fetched
        // but uncommitted load/store occupies one.
        int lsq_used = 0;
        for (const auto &entry : rob) {
            const auto cls = trace[entry.index].cls;
            if (cls == InstrClass::Load || cls == InstrClass::Store)
                ++lsq_used;
        }
        const bool lsq_full = lsq_used > config_.lsqEntries;

        int issued = 0;
        int int_units = config_.intAlus;
        int fp_units = config_.fpAlus;
        int mem_ports = 2;
        for (auto &entry : rob) {
            if (issued >= config_.issueWidth)
                break;
            if (entry.issued)
                continue;
            const auto &instr = trace[entry.index];

            // Structural hazard check.
            int *unit = nullptr;
            switch (instr.cls) {
              case InstrClass::IntAlu:
              case InstrClass::Branch:
                unit = &int_units;
                break;
              case InstrClass::FpAlu:
                unit = &fp_units;
                break;
              case InstrClass::Load:
              case InstrClass::Store:
                unit = &mem_ports;
                break;
            }
            if (*unit <= 0)
                continue;

            // Data dependency: the producer must have completed.
            if (instr.depDistance > 0 &&
                entry.index >= static_cast<std::size_t>(instr.depDistance)) {
                const std::size_t producer =
                    entry.index - static_cast<std::size_t>(instr.depDistance);
                if (done[producer] == kNotDone || done[producer] > now)
                    continue;
            }

            entry.issued = true;
            --*unit;
            ++issued;
            done[entry.index] =
                now + static_cast<std::uint64_t>(latencyOf(instr));
        }

        // 3. Fetch into the window; an over-full LSQ stalls the front
        // end the same way a full ROB does.
        if (now >= fetch_blocked_until && !lsq_full) {
            int fetched = 0;
            while (fetched < config_.fetchWidth && next_fetch < n &&
                   static_cast<int>(rob.size()) < config_.robEntries) {
                rob.push_back({next_fetch, false});
                const auto &instr = trace[next_fetch];
                ++next_fetch;
                ++fetched;
                if (instr.cls == InstrClass::Branch &&
                    instr.mispredicted) {
                    // Redirect: the front end refills once the branch
                    // resolves; charge the pipeline depth from now as
                    // an approximation of resolve + refill.
                    fetch_blocked_until = now +
                        static_cast<std::uint64_t>(config_.pipelineDepth);
                    break;
                }
            }
            if (fetched == 0 && next_fetch < n &&
                static_cast<int>(rob.size()) >= config_.robEntries) {
                ++res.robFullStalls;
            }
        } else if (now < fetch_blocked_until) {
            ++res.mispredictStalls;
        } else {
            ++res.robFullStalls; // LSQ back-pressure counts as window full
        }

        ++now;
        SC_ASSERT(now < 1ull << 40, "CycleCore: runaway simulation");
    }

    res.instructions = n;
    res.cycles = now;
    return res;
}

} // namespace solarcore::cpu::cycle
