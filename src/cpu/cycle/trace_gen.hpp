/**
 * @file
 * Synthetic instruction-trace generation for the cycle-level core.
 *
 * The interval model (cpu/perf_model) is the workhorse of the day-long
 * simulations; the cycle-level core in this directory exists to
 * validate it. Both consume the same PhaseProfile: this generator
 * expands a profile into a concrete instruction stream whose class
 * mix, dependency structure, branch-misprediction rate and cache-miss
 * rates realize the profile's statistics, deterministically per seed.
 */

#ifndef SOLARCORE_CPU_CYCLE_TRACE_GEN_HPP
#define SOLARCORE_CPU_CYCLE_TRACE_GEN_HPP

#include <cstdint>
#include <vector>

#include "cpu/profile.hpp"

namespace solarcore::cpu::cycle {

/** Instruction classes distinguished by the cycle core. */
enum class InstrClass { IntAlu, FpAlu, Load, Store, Branch };

/** Where in the hierarchy a memory access hits. */
enum class MemLevel { L1, L2, Memory };

/** One instruction of a synthetic trace. */
struct TraceInstr
{
    InstrClass cls = InstrClass::IntAlu;
    /**
     * Dependency distance: this instruction reads the result of the
     * instruction `depDistance` slots earlier (0 = no register
     * dependency). Short distances serialize execution; the generator
     * samples them to realize the profile's ILP.
     */
    int depDistance = 0;
    bool mispredicted = false;    //!< branches only
    MemLevel memLevel = MemLevel::L1; //!< loads/stores only
};

/** A generated instruction stream. */
using Trace = std::vector<TraceInstr>;

/**
 * Expand @p phase into @p count instructions.
 *
 * Class mix: memFraction loads/stores (2:1 loads:stores), fpFraction
 * FP, ~10% branches, remainder integer ALU. Branch mispredictions are
 * drawn at branchMpki per kilo-instruction; load/store miss levels at
 * l1MissPerKi / l2MissPerKi. Dependencies: with probability 1/ilp an
 * instruction depends on its predecessor, otherwise on a far-back
 * producer, which reproduces the profile's dependency-limited IPC on
 * a wide machine.
 */
Trace generateTrace(const PhaseProfile &phase, int count,
                    std::uint64_t seed);

/** Measured statistics of a trace (for tests). */
struct TraceStats
{
    double loadStoreFraction = 0.0;
    double fpFraction = 0.0;
    double branchFraction = 0.0;
    double mispredictsPerKi = 0.0;
    double l1MissesPerKi = 0.0;
    double l2MissesPerKi = 0.0;
};

/** Compute the statistics of @p trace. */
TraceStats measureTrace(const Trace &trace);

} // namespace solarcore::cpu::cycle

#endif // SOLARCORE_CPU_CYCLE_TRACE_GEN_HPP
