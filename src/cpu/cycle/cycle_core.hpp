/**
 * @file
 * A small trace-driven, cycle-level out-of-order core.
 *
 * Models the Table 4 machine at cycle granularity: W-wide fetch into a
 * ROB, dependency-tracked wakeup, latency-accurate execution (ALUs,
 * FP units, the L1/L2/memory hierarchy with frequency-dependent
 * memory cycles), W-wide in-order commit, and front-end refill stalls
 * after branch mispredictions. Memory-level parallelism emerges from
 * the window rather than being a parameter.
 *
 * The cycle core exists to validate the interval model (cpu/perf_model)
 * that the day-long simulations use: tests check that both models
 * agree on IPC within tolerance and, more importantly, on every trend
 * the power-management results rely on (frequency scaling of
 * memory-bound code, misprediction sensitivity, width saturation).
 */

#ifndef SOLARCORE_CPU_CYCLE_CYCLE_CORE_HPP
#define SOLARCORE_CPU_CYCLE_CYCLE_CORE_HPP

#include <cstdint>

#include "cpu/cycle/trace_gen.hpp"
#include "cpu/machine_config.hpp"

namespace solarcore::cpu::cycle {

/** Result of one cycle-accurate run. */
struct CycleResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t mispredictStalls = 0; //!< front-end stall cycles
    std::uint64_t robFullStalls = 0;    //!< fetch stalls on full window

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Trace-driven cycle-level core simulator. */
class CycleCore
{
  public:
    /**
     * @param config        microarchitecture (widths, ROB, latencies)
     * @param frequency_hz  clock; converts the fixed memory latency in
     *                      nanoseconds into cycles
     */
    CycleCore(const CoreConfig &config, double frequency_hz);

    /** Execute @p trace to completion and return the statistics. */
    CycleResult run(const Trace &trace) const;

    /** Execution latency in cycles of one instruction. */
    int latencyOf(const TraceInstr &instr) const;

    /** Memory round-trip latency in cycles at this core's clock. */
    int memoryCycles() const { return memCycles_; }

  private:
    CoreConfig config_;
    double frequencyHz_;
    int memCycles_;
};

} // namespace solarcore::cpu::cycle

#endif // SOLARCORE_CPU_CYCLE_CYCLE_CORE_HPP
