#include "trace_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/random.hpp"

namespace solarcore::cpu::cycle {

Trace
generateTrace(const PhaseProfile &phase, int count, std::uint64_t seed)
{
    SC_ASSERT(count > 0, "generateTrace: non-positive count");
    Rng rng(seed);
    Trace trace;
    trace.reserve(static_cast<std::size_t>(count));

    const double branch_frac = 0.10;
    const double mem_frac = phase.memFraction;
    const double fp_frac = phase.fpFraction;

    // Dependency lattice realizing the dependency-limited IPC: every
    // instruction consumes a value produced a few slots earlier. With
    // an average producer latency lambda (ALU 1, FP 4, L1 load 3),
    // spacing the links ilp*lambda slots apart sustains ~ilp committed
    // instructions per cycle on a wide machine. The profile's
    // frequency-invariant stall component maps onto fully serializing
    // (distance-1) links, each of which adds ~(1 - 1/ilp) cycles over
    // a regular link.
    const double lambda = 1.0 + 3.0 * fp_frac + 2.0 * mem_frac * 2.0 / 3.0;
    const double lattice_mean = std::max(1.0, phase.ilp) * lambda;
    const double p_stall = std::clamp(
        phase.stallCpi * phase.ilp / std::max(0.2, phase.ilp - 1.0), 0.0,
        0.9);

    // Per-memory-instruction miss probabilities from per-KI rates.
    const double mem_per_ki = std::max(1e-9, mem_frac * 1000.0);
    const double p_l2 = std::min(1.0, phase.l1MissPerKi / mem_per_ki);
    const double p_mem = std::min(
        p_l2, phase.l2MissPerKi / mem_per_ki); // memory misses are the
                                               // subset that also miss L2
    const double p_mispredict =
        std::min(1.0, phase.branchMpki / (branch_frac * 1000.0));

    bool chain_next = false; // next instr consumes a missing load
    for (int i = 0; i < count; ++i) {
        TraceInstr instr;
        const double u = rng.uniform();
        if (u < branch_frac) {
            instr.cls = InstrClass::Branch;
            instr.mispredicted = rng.bernoulli(p_mispredict);
        } else if (u < branch_frac + mem_frac) {
            instr.cls = rng.uniform() < 2.0 / 3.0 ? InstrClass::Load
                                                  : InstrClass::Store;
            const double m = rng.uniform();
            if (m < p_mem) {
                instr.memLevel = MemLevel::Memory;
                // Pointer-chasing structure: a fraction 1/mlp of
                // off-chip misses feeds a dependent consumer, which is
                // what limits the profile's memory-level parallelism.
                if (instr.cls == InstrClass::Load &&
                    rng.bernoulli(1.0 / std::max(1.0, phase.mlp))) {
                    chain_next = true;
                }
            } else if (m < p_l2) {
                instr.memLevel = MemLevel::L2;
            } else {
                instr.memLevel = MemLevel::L1;
            }
        } else if (u < branch_frac + mem_frac + fp_frac) {
            instr.cls = InstrClass::FpAlu;
        } else {
            instr.cls = InstrClass::IntAlu;
        }

        if (chain_next && i > 0) {
            instr.depDistance = 1;
            chain_next = false;
        } else if (i > 0 && rng.bernoulli(p_stall)) {
            instr.depDistance = 1;
        } else if (i > 0) {
            const double draw =
                rng.gaussian(lattice_mean, 0.4 * lattice_mean);
            const int dist = static_cast<int>(std::lround(draw));
            instr.depDistance = std::clamp(dist, 1, std::min(i, 32));
        } else {
            instr.depDistance = 0;
        }
        trace.push_back(instr);
    }
    return trace;
}

TraceStats
measureTrace(const Trace &trace)
{
    TraceStats st;
    if (trace.empty())
        return st;
    double loads_stores = 0.0;
    double fps = 0.0;
    double branches = 0.0;
    double mispredicts = 0.0;
    double l1_misses = 0.0;
    double l2_misses = 0.0;
    for (const auto &i : trace) {
        switch (i.cls) {
          case InstrClass::Load:
          case InstrClass::Store:
            ++loads_stores;
            if (i.memLevel != MemLevel::L1)
                ++l1_misses;
            if (i.memLevel == MemLevel::Memory)
                ++l2_misses;
            break;
          case InstrClass::FpAlu:
            ++fps;
            break;
          case InstrClass::Branch:
            ++branches;
            mispredicts += i.mispredicted;
            break;
          case InstrClass::IntAlu:
            break;
        }
    }
    const double n = static_cast<double>(trace.size());
    st.loadStoreFraction = loads_stores / n;
    st.fpFraction = fps / n;
    st.branchFraction = branches / n;
    st.mispredictsPerKi = mispredicts / n * 1000.0;
    st.l1MissesPerKi = l1_misses / n * 1000.0;
    st.l2MissesPerKi = l2_misses / n * 1000.0;
    return st;
}

} // namespace solarcore::cpu::cycle
