#include "vrm.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace solarcore::cpu {

Vrm::Vrm(const VrmParams &params) : params_(params)
{
    SC_ASSERT(params_.peakEfficiency > 0.0 &&
                  params_.peakEfficiency <= 1.0,
              "Vrm: bad peak efficiency");
    SC_ASSERT(params_.ratedPowerW > 0.0 && params_.slewVoltsPerUs > 0.0,
              "Vrm: bad rating/slew");
}

double
Vrm::efficiencyAt(double load_w) const
{
    SC_ASSERT(load_w >= 0.0, "Vrm: negative load");
    const double x = load_w / params_.ratedPowerW;
    if (x <= 0.0)
        return params_.peakEfficiency - params_.lightLoadPenalty;
    // Light-load droop recovers toward the peak by the rated load,
    // then conduction losses shave a little above rating.
    const double droop =
        params_.lightLoadPenalty * std::exp(-3.0 * x);
    const double overload = x > 1.0 ? 0.02 * (x - 1.0) : 0.0;
    return std::max(0.5, params_.peakEfficiency - droop - overload);
}

double
Vrm::inputPower(double load_w) const
{
    if (load_w <= 0.0)
        return 0.0;
    return load_w / efficiencyAt(load_w);
}

double
Vrm::transitionSeconds(double v_from, double v_to) const
{
    return std::abs(v_to - v_from) / (params_.slewVoltsPerUs * 1e6);
}

double
Vrm::transitionJoules(double v_from, double v_to) const
{
    return std::abs(v_to - v_from) * 1000.0 * params_.transitionNjPerMv *
        1e-9;
}

} // namespace solarcore::cpu
