/**
 * @file
 * Interval-style analytic performance model for a 4-wide out-of-order
 * core. Substitutes for the paper's cycle-accurate simulator at the
 * 10-hour timescales the evaluation needs (see DESIGN.md section 3).
 *
 * CPI is decomposed into a steady-state issue component plus miss-event
 * penalties (branch mispredictions, L2 hits, memory accesses). Memory
 * latency is constant in nanoseconds, so its cycle cost scales with
 * clock frequency: memory-bound phases lose less IPC when slowed down,
 * the classic DVFS interaction the paper's load tuning exploits.
 */

#ifndef SOLARCORE_CPU_PERF_MODEL_HPP
#define SOLARCORE_CPU_PERF_MODEL_HPP

#include "cpu/machine_config.hpp"
#include "cpu/profile.hpp"

namespace solarcore::cpu {

/** Output of one performance-model evaluation. */
struct PerfEstimate
{
    double ipc = 0.0;          //!< committed instructions per cycle
    double cpiBase = 0.0;      //!< issue-limit + in-core stall component
    double cpiBranch = 0.0;    //!< misprediction stalls
    double cpiL2 = 0.0;        //!< L1-miss / L2-hit stalls
    double cpiMemory = 0.0;    //!< off-chip memory stalls

    double cpi() const
    {
        return cpiBase + cpiBranch + cpiL2 + cpiMemory;
    }

    /** Committed instructions per second at @p frequency_hz. */
    double
    throughput(double frequency_hz) const
    {
        return ipc * frequency_hz;
    }
};

/** Analytic interval performance model. */
class PerfModel
{
  public:
    explicit PerfModel(const CoreConfig &config) : config_(config) {}

    const CoreConfig &config() const { return config_; }

    /**
     * Estimate steady-state performance of @p phase at @p frequency_hz.
     *
     * The issue component is the dependency/width bound; branch and L2
     * penalties are frequency-independent cycle counts; the memory
     * penalty converts the fixed memory latency (ns) into cycles at
     * the target frequency and divides by the phase's MLP.
     */
    PerfEstimate evaluate(const PhaseProfile &phase,
                          double frequency_hz) const;

  private:
    CoreConfig config_;
};

} // namespace solarcore::cpu

#endif // SOLARCORE_CPU_PERF_MODEL_HPP
