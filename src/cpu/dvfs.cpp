#include "dvfs.hpp"

#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace solarcore::cpu {

DvfsTable
DvfsTable::paperDefault()
{
    // Table 4: 2.5/2.2/1.9/1.6/1.3/1.0 GHz at 1.45/1.35/1.25/1.15/1.05/
    // 0.95 V, listed here ascending.
    std::vector<DvfsPoint> pts = {
        {1.0e9, 0.95}, {1.3e9, 1.05}, {1.6e9, 1.15},
        {1.9e9, 1.25}, {2.2e9, 1.35}, {2.5e9, 1.45},
    };
    return DvfsTable(std::move(pts));
}

DvfsTable
DvfsTable::interpolated(int levels)
{
    SC_ASSERT(levels >= 2, "DvfsTable::interpolated: need >= 2 levels");
    std::vector<DvfsPoint> pts;
    pts.reserve(static_cast<std::size_t>(levels));
    for (int i = 0; i < levels; ++i) {
        const double t = static_cast<double>(i) / (levels - 1);
        pts.push_back({1.0e9 + t * 1.5e9, 0.95 + t * 0.50});
    }
    return DvfsTable(std::move(pts));
}

DvfsTable::DvfsTable(std::vector<DvfsPoint> points)
    : points_(std::move(points))
{
    SC_ASSERT(!points_.empty(), "DvfsTable: empty table");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        SC_ASSERT(points_[i].frequencyHz > points_[i - 1].frequencyHz,
                  "DvfsTable: frequencies must ascend");
        SC_ASSERT(points_[i].voltage >= points_[i - 1].voltage,
                  "DvfsTable: voltages must be non-decreasing");
    }
}

const DvfsPoint &
DvfsTable::point(int level) const
{
    SC_ASSERT(level >= 0 && level < numLevels(),
              "DvfsTable: level out of range: ", level);
    return points_[static_cast<std::size_t>(level)];
}

double
DvfsTable::maxVoltage() const
{
    return points_.back().voltage;
}

std::uint8_t
DvfsTable::vid(int level) const
{
    // Intel 6-bit VID: codes step 25 mV from 0.8375 V.
    const double v = voltage(level);
    const double code = std::round((v - 0.8375) / 0.025);
    return static_cast<std::uint8_t>(code < 0 ? 0 : (code > 63 ? 63 : code));
}

int
DvfsTable::levelFromVid(std::uint8_t vid_code) const
{
    const double v = 0.8375 + 0.025 * vid_code;
    int best = 0;
    double best_err = 1e9;
    for (int l = 0; l < numLevels(); ++l) {
        const double err = std::abs(voltage(l) - v);
        if (err < best_err) {
            best_err = err;
            best = l;
        }
    }
    return best;
}

std::string
DvfsTable::describe() const
{
    auto point_label = [&](int level) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2fGHz@%.2fV",
                      frequency(level) / 1e9, voltage(level));
        return std::string(buf);
    };
    return std::to_string(numLevels()) + " levels: " +
        point_label(minLevel()) + " .. " + point_label(maxLevel());
}

} // namespace solarcore::cpu
