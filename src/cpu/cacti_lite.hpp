/**
 * @file
 * CACTI-style analytical energy model for SRAM structures.
 *
 * The paper's power methodology is Wattch with CACTI-derived array
 * energies. This module provides the same derivation path at reduced
 * fidelity: per-access read/write energy and leakage of a cache or
 * RAM array are estimated from its geometry (capacity, associativity,
 * line size, ports) using first-order wordline/bitline capacitance
 * scaling at a given feature size and supply voltage. The absolute
 * numbers land in the published CACTI ballpark for 90 nm arrays
 * (tens of pJ for small register arrays to a few nJ for a 2 MB L2);
 * deriveEnergyParams() then assembles a full Wattch-like EnergyParams
 * from the Table 4 machine configuration.
 */

#ifndef SOLARCORE_CPU_CACTI_LITE_HPP
#define SOLARCORE_CPU_CACTI_LITE_HPP

#include "cpu/machine_config.hpp"
#include "cpu/power_model.hpp"

namespace solarcore::cpu {

/** Geometry of one SRAM array. */
struct SramGeometry
{
    int sizeBytes = 65536;  //!< total capacity
    int assoc = 4;          //!< ways (1 = direct mapped / plain RAM)
    int lineBytes = 64;     //!< line (row entry) size
    int readPorts = 1;
    int writePorts = 1;
};

/** Estimated electrical characteristics of an array. */
struct SramEnergy
{
    double readNj = 0.0;    //!< energy per read access [nJ]
    double writeNj = 0.0;   //!< energy per write access [nJ]
    double leakageW = 0.0;  //!< standby leakage [W]
};

/**
 * Estimate array energy at @p feature_nm / @p vdd.
 *
 * Model: the array is split into sub-banks of at most 64 rows x
 * 512 columns; an access charges one wordline (proportional to the
 * row width), discharges the bitline pairs of one row (proportional
 * to rows per bank), reads all ways in parallel (associativity
 * multiplies the dynamic term) and pays a decoder/sense overhead.
 * Energies scale with C*V^2; leakage with bit count and V^2.
 */
SramEnergy estimateSram(const SramGeometry &geometry,
                        double feature_nm = 90.0, double vdd = 1.45);

/**
 * Derive the Wattch-like per-event energies of a core from its
 * configuration: caches via estimateSram, register file / issue queue
 * / ROB / LSQ as multi-ported RAM/CAM arrays, function units and the
 * clock tree as fitted constants scaled by width.
 */
EnergyParams deriveEnergyParams(const CoreConfig &config,
                                double feature_nm = 90.0,
                                double vdd = 1.45);

} // namespace solarcore::cpu

#endif // SOLARCORE_CPU_CACTI_LITE_HPP
