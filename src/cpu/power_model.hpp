/**
 * @file
 * Wattch/CACTI-style core power model (paper Section 5).
 *
 * Dynamic energy is accumulated per microarchitectural structure:
 * front-end (fetch/decode/rename/branch predictor), out-of-order
 * window (issue queue + ROB), register file, function units, LSQ +
 * L1D, L2, and the clock tree. Per-access energies are referenced to
 * the nominal voltage and scale with V^2; clock power additionally
 * scales with frequency and is partially gated on stall cycles.
 * Leakage scales with voltage and die temperature and is mostly
 * removed by per-core power gating (PCPG).
 */

#ifndef SOLARCORE_CPU_POWER_MODEL_HPP
#define SOLARCORE_CPU_POWER_MODEL_HPP

#include "cpu/machine_config.hpp"
#include "cpu/perf_model.hpp"
#include "cpu/profile.hpp"

namespace solarcore::cpu {

/** Per-access / per-cycle energies at the nominal voltage [nJ]. */
struct EnergyParams
{
    double nominalVoltage = 1.45; //!< reference Vdd for the table below
    double frontendNj = 0.55;     //!< per instruction
    double windowNj = 0.50;       //!< per instruction
    double regfileNj = 0.30;      //!< per instruction
    double intAluNj = 0.45;       //!< per integer instruction
    double fpAluNj = 1.10;        //!< per FP instruction
    double lsqDcacheNj = 0.90;    //!< per load/store
    double l2AccessNj = 5.00;     //!< per L1 miss
    double clockTreeNj = 0.95;    //!< per cycle, before gating
    double clockGatedFraction = 0.45; //!< clock power retained on stalls
    double leakageAtNominalW = 1.8;   //!< per-core leakage at Vnom, 50 C
    double leakageTempCoeff = 0.012;  //!< fractional increase per kelvin
    double gatedResidualW = 0.05;     //!< PCPG residual (rail leakage)
};

/** Per-structure dynamic power split (the Wattch view). */
struct PowerBreakdown
{
    double frontendW = 0.0;  //!< fetch/decode/rename/branch predictor
    double windowW = 0.0;    //!< issue queue + ROB
    double regfileW = 0.0;
    double aluW = 0.0;       //!< integer + FP units
    double lsqDcacheW = 0.0;
    double l2W = 0.0;
    double clockW = 0.0;

    double
    total() const
    {
        return frontendW + windowW + regfileW + aluW + lsqDcacheW + l2W +
            clockW;
    }
};

/** Result of one power evaluation. */
struct PowerEstimate
{
    double dynamicW = 0.0;
    double leakageW = 0.0;

    double totalW() const { return dynamicW + leakageW; }

    /** Energy per committed instruction [nJ]; 0 when gated. */
    double epiNj = 0.0;

    /** Per-structure split of dynamicW. */
    PowerBreakdown breakdown;
};

/** Evaluates per-core power for a phase at an operating point. */
class PowerModel
{
  public:
    explicit PowerModel(const EnergyParams &params = EnergyParams());

    const EnergyParams &params() const { return params_; }

    /**
     * Power of a core running @p phase with performance @p perf at
     * voltage @p vdd, frequency @p frequency_hz and die temperature
     * @p die_temp_c.
     */
    PowerEstimate evaluate(const PhaseProfile &phase,
                           const PerfEstimate &perf, double vdd,
                           double frequency_hz,
                           double die_temp_c = 50.0) const;

    /** Power of a power-gated core. */
    PowerEstimate gatedPower() const;

    /** Leakage power at a given voltage/temperature (per core). */
    double leakageAt(double vdd, double die_temp_c) const;

    /**
     * Dynamic energy per instruction [nJ] at the nominal voltage for a
     * phase (activity-scaled, before V^2 scaling), excluding clock.
     */
    double dynamicEpiNominalNj(const PhaseProfile &phase) const;

  private:
    EnergyParams params_;
};

} // namespace solarcore::cpu

#endif // SOLARCORE_CPU_POWER_MODEL_HPP
