#include "perf_model.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace solarcore::cpu {

PerfEstimate
PerfModel::evaluate(const PhaseProfile &phase, double frequency_hz) const
{
    SC_ASSERT(frequency_hz > 0.0, "PerfModel: non-positive frequency");
    PerfEstimate est;

    // Steady-state issue rate: bounded by machine width and program ILP.
    const double issue_ipc =
        std::min(static_cast<double>(config_.issueWidth), phase.ilp);
    est.cpiBase = 1.0 / issue_ipc;

    // Branch mispredictions: full pipeline refill per event.
    est.cpiBranch = phase.branchMpki / 1000.0 *
        static_cast<double>(config_.pipelineDepth);

    // L1 misses served by the L2: partially hidden by the out-of-order
    // window; the visible fraction shrinks with window size relative to
    // the latency (simple saturation form).
    const double l2_lat = static_cast<double>(config_.l2LatencyCycles);
    const double window_cover =
        std::min(1.0, static_cast<double>(config_.robEntries) /
                     (16.0 * l2_lat));
    est.cpiL2 = phase.l1MissPerKi / 1000.0 * l2_lat * (1.0 - window_cover);

    // Off-chip accesses: latency is fixed in time, so the cycle cost
    // grows with frequency; MLP overlaps concurrent misses.
    const double mem_cycles =
        config_.memLatencyNs * 1e-9 * frequency_hz;
    est.cpiMemory = phase.l2MissPerKi / 1000.0 * mem_cycles /
        std::max(1.0, phase.mlp);

    // Frequency-invariant in-core stalls enter the base component.
    est.cpiBase += phase.stallCpi;

    est.ipc = 1.0 / est.cpi();
    return est;
}

} // namespace solarcore::cpu
