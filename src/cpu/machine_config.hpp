/**
 * @file
 * Simulated machine configuration (paper Table 4): an 8-core chip of
 * Alpha-21264-class 4-wide out-of-order cores at 90 nm, plus the
 * SpeedStep-style DVFS operating points of paper Section 5.
 */

#ifndef SOLARCORE_CPU_MACHINE_CONFIG_HPP
#define SOLARCORE_CPU_MACHINE_CONFIG_HPP

namespace solarcore::cpu {

/** Microarchitectural parameters of one core (paper Table 4). */
struct CoreConfig
{
    // Pipeline
    int fetchWidth = 4;         //!< 4-wide fetch/issue/commit
    int issueWidth = 4;
    int commitWidth = 4;
    int pipelineDepth = 14;     //!< front-end depth, misprediction cost
    int robEntries = 98;
    int issueQueueEntries = 64;
    int lsqEntries = 48;
    int intAlus = 4;
    int intMuls = 2;
    int fpAlus = 2;
    int fpMuls = 2;

    // Branch prediction
    int branchPredictorEntries = 2048; //!< gshare, 10-bit history
    int btbEntries = 2048;
    int rasEntries = 32;

    // Memory hierarchy (private L1 + L2 per core, Table 4)
    int l1SizeKb = 64;
    int l1Assoc = 4;
    int l1LineBytes = 64;
    int l1LatencyCycles = 3;
    int l2SizeKb = 2048;
    int l2Assoc = 8;
    int l2LineBytes = 128;
    int l2LatencyCycles = 12;
    double memLatencyNs = 160.0; //!< 400 cycles at the nominal 2.5 GHz
    int tlbMissCycles = 200;
};

/** Chip-level configuration. */
struct ChipConfig
{
    int numCores = 8;
    CoreConfig core;
    double nominalVddRail = 12.0; //!< PSU rail feeding the per-core VRMs
};

/** Default paper configuration. */
ChipConfig defaultChipConfig();

} // namespace solarcore::cpu

#endif // SOLARCORE_CPU_MACHINE_CONFIG_HPP
