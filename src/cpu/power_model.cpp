#include "power_model.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace solarcore::cpu {

PowerModel::PowerModel(const EnergyParams &params) : params_(params)
{
    SC_ASSERT(params_.nominalVoltage > 0.0, "PowerModel: bad Vnom");
}

double
PowerModel::dynamicEpiNominalNj(const PhaseProfile &phase) const
{
    const double int_fraction = 1.0 - phase.fpFraction;
    double nj = params_.frontendNj + params_.windowNj + params_.regfileNj;
    nj += params_.intAluNj * int_fraction;
    nj += params_.fpAluNj * phase.fpFraction;
    nj += params_.lsqDcacheNj * phase.memFraction;
    nj += params_.l2AccessNj * phase.l1MissPerKi / 1000.0;
    return nj * phase.activityScale;
}

double
PowerModel::leakageAt(double vdd, double die_temp_c) const
{
    // Subthreshold leakage grows superlinearly with Vdd and roughly
    // exponentially with temperature; a quadratic voltage term and a
    // linearized temperature term capture the trend at our fidelity.
    const double v_ratio = vdd / params_.nominalVoltage;
    const double temp_term =
        1.0 + params_.leakageTempCoeff * (die_temp_c - 50.0);
    return params_.leakageAtNominalW * v_ratio * v_ratio *
        std::max(0.25, temp_term);
}

PowerEstimate
PowerModel::evaluate(const PhaseProfile &phase, const PerfEstimate &perf,
                     double vdd, double frequency_hz,
                     double die_temp_c) const
{
    SC_ASSERT(vdd > 0.0 && frequency_hz > 0.0,
              "PowerModel: bad operating point");
    PowerEstimate out;

    const double v_sq =
        (vdd / params_.nominalVoltage) * (vdd / params_.nominalVoltage);

    // Instruction-driven dynamic power: per-structure energy times the
    // instruction rate, V^2-scaled (the Wattch accumulation).
    const double instr_per_sec = perf.throughput(frequency_hz);
    const double act = phase.activityScale;
    const double to_w = act * v_sq * 1e-9 * instr_per_sec;
    const double int_fraction = 1.0 - phase.fpFraction;

    auto &bd = out.breakdown;
    bd.frontendW = params_.frontendNj * to_w;
    bd.windowW = params_.windowNj * to_w;
    bd.regfileW = params_.regfileNj * to_w;
    bd.aluW = (params_.intAluNj * int_fraction +
               params_.fpAluNj * phase.fpFraction) *
        to_w;
    bd.lsqDcacheW = params_.lsqDcacheNj * phase.memFraction * to_w;
    bd.l2W = params_.l2AccessNj * phase.l1MissPerKi / 1000.0 * to_w;

    // Clock tree: busy cycles pay full clock energy, stall cycles pay
    // the non-gated fraction. Busy fraction ~ IPC / width.
    constexpr double issue_width = 4.0; // Table 4 machine width
    const double busy = std::min(1.0, perf.ipc / issue_width);
    const double clock_nj = params_.clockTreeNj * act * v_sq *
        (busy + (1.0 - busy) * params_.clockGatedFraction);
    bd.clockW = clock_nj * 1e-9 * frequency_hz;

    out.dynamicW = bd.total();
    out.leakageW = leakageAt(vdd, die_temp_c);
    out.epiNj = instr_per_sec > 0.0
        ? out.totalW() / instr_per_sec * 1e9
        : 0.0;
    return out;
}

PowerEstimate
PowerModel::gatedPower() const
{
    PowerEstimate out;
    out.dynamicW = 0.0;
    out.leakageW = params_.gatedResidualW;
    out.epiNj = 0.0;
    return out;
}

} // namespace solarcore::cpu
