/**
 * @file
 * Per-core DVFS operating points and VID encoding (paper Sections 4.1
 * and 5): six voltage/frequency pairs from 2.5 GHz / 1.45 V down to
 * 1.0 GHz / 0.95 V in 300 MHz / 0.1 V steps, communicated to on-chip
 * VRMs through a Voltage Identification Digital (VID) code.
 */

#ifndef SOLARCORE_CPU_DVFS_HPP
#define SOLARCORE_CPU_DVFS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace solarcore::cpu {

/** One DVFS operating point. */
struct DvfsPoint
{
    double frequencyHz = 0.0;
    double voltage = 0.0;
};

/**
 * The table of per-core operating points, ordered ascending: level 0
 * is the slowest/lowest-voltage point, level size()-1 the fastest.
 */
class DvfsTable
{
  public:
    /** The paper's 6-point SpeedStep-style table. */
    static DvfsTable paperDefault();

    /**
     * A table with @p levels points interpolated over the paper's
     * range (1.0..2.5 GHz, 0.95..1.45 V). Used by the DVFS-granularity
     * ablation: the paper argues finer levels raise MPPT control
     * accuracy (Section 6.3).
     */
    static DvfsTable interpolated(int levels);

    /** Build from explicit points (ascending frequency required). */
    explicit DvfsTable(std::vector<DvfsPoint> points);

    int numLevels() const { return static_cast<int>(points_.size()); }
    int minLevel() const { return 0; }
    int maxLevel() const { return numLevels() - 1; }

    const DvfsPoint &point(int level) const;
    double frequency(int level) const { return point(level).frequencyHz; }
    double voltage(int level) const { return point(level).voltage; }

    /** Highest voltage in the table (the VRM full-scale). */
    double maxVoltage() const;

    /**
     * VID code for a level: the paper cites Intel's 6-bit VID mapping
     * 0.8375..1.6 V in 32 steps of 25 mV (even codes). We encode the
     * level's voltage as the nearest code.
     */
    std::uint8_t vid(int level) const;

    /** Level whose VID code is @p vid (nearest voltage match). */
    int levelFromVid(std::uint8_t vid) const;

    /**
     * Compact human-readable table summary for run manifests and
     * trace metadata, e.g. "6 levels: 1.00GHz@0.95V .. 2.50GHz@1.45V".
     */
    std::string describe() const;

  private:
    std::vector<DvfsPoint> points_;
};

} // namespace solarcore::cpu

#endif // SOLARCORE_CPU_DVFS_HPP
