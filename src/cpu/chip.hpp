/**
 * @file
 * The 8-core chip: owns the shared DVFS table and models, constructs
 * one Core per workload slot, and aggregates power/throughput for the
 * SolarCore controller.
 */

#ifndef SOLARCORE_CPU_CHIP_HPP
#define SOLARCORE_CPU_CHIP_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cpu/core.hpp"
#include "cpu/machine_config.hpp"
#include "cpu/vrm.hpp"

namespace solarcore::cpu {

/** An N-core chip running a multiprogrammed workload. */
class MultiCoreChip
{
  public:
    /**
     * @param config     chip/core configuration (Table 4)
     * @param table      DVFS operating points shared by all cores
     * @param energy     power model parameters
     * @param workload   one benchmark per core; its size must equal
     *                   config.numCores
     * @param seed       deterministic phase-jitter seed
     */
    MultiCoreChip(const ChipConfig &config, const DvfsTable &table,
                  const EnergyParams &energy,
                  std::vector<BenchmarkProfile> workload,
                  std::uint64_t seed);

    int numCores() const { return static_cast<int>(cores_.size()); }
    Core &core(int i);
    const Core &core(int i) const;

    const DvfsTable &dvfs() const { return table_; }
    const ChipConfig &config() const { return config_; }
    const PowerModel &powerModel() const { return powerModel_; }

    /** Total chip power at the current per-core states [W]. */
    double totalPower() const;

    /**
     * Enable the per-core VRM conversion model: inputPower() then
     * reports the 12 V-rail draw including regulator losses. Pass
     * nullopt to return to ideal regulators (the default, which the
     * paper and the calibrated experiments assume).
     */
    void setVrmModel(const VrmParams &params);
    void clearVrmModel();
    bool hasVrmModel() const { return vrmModel_.has_value(); }

    /**
     * Power drawn from the 12 V rail: totalPower() under ideal
     * regulators, or the per-core VRM-lossy sum when a VRM model is
     * installed.
     */
    double inputPower() const;

    /** Total committed instructions per second at current states. */
    double totalThroughput() const;

    /** Advance all cores by @p seconds of wall-clock time. */
    void step(double seconds);

    /** Sum of instructions retired by all cores since construction. */
    double totalInstructions() const;

    /** Sum of energy consumed by all cores since construction [J]. */
    double totalEnergy() const;

    /** Chip-wide DVFS level changes since construction (all cores). */
    std::uint64_t totalDvfsTransitions() const;

    /** Chip-wide gate/ungate events since construction (all cores). */
    std::uint64_t totalGateTransitions() const;

    /** Snapshot of one core's power-management state. */
    struct CoreSetting
    {
        int level = 0;
        bool gated = false;
    };

    /** Snapshot all per-core DVFS/gating states. */
    std::vector<CoreSetting> settings() const;

    /** Restore a snapshot taken with settings(). */
    void applySettings(const std::vector<CoreSetting> &settings);

    /** Set every core to @p level and ungate it. */
    void setAllLevels(int level);

    /** Gate every core. */
    void gateAll();

    /** Migrate the programs of cores @p i and @p j (thread motion). */
    void swapWorkloads(int i, int j);

    /**
     * Allow or forbid per-core power gating (PCPG). With gating
     * forbidden the adaptation policies bottom out at the lowest DVFS
     * level -- the knob the PCPG ablation flips.
     */
    void setGatingAllowed(bool allowed) { gatingAllowed_ = allowed; }
    bool gatingAllowed() const { return gatingAllowed_; }

    /** Chip power with every core ungated at the lowest level [W]. */
    double minUngatedPower() const;

    /** Chip power with every core at the highest level [W]. */
    double maxPower() const;

  private:
    ChipConfig config_;
    DvfsTable table_;
    PerfModel perfModel_;
    PowerModel powerModel_;
    std::vector<Core> cores_;
    std::optional<Vrm> vrmModel_;
    bool gatingAllowed_ = true;
};

} // namespace solarcore::cpu

#endif // SOLARCORE_CPU_CHIP_HPP
