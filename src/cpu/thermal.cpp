#include "thermal.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace solarcore::cpu {

ThermalModel::ThermalModel(double r_c_per_w, double c_j_per_c,
                           double initial_c)
    : rTh_(r_c_per_w), cTh_(c_j_per_c), tempC_(initial_c)
{
    SC_ASSERT(r_c_per_w > 0.0 && c_j_per_c > 0.0,
              "ThermalModel: non-positive RC");
}

double
ThermalModel::steadyState(double power_w, double ambient_c) const
{
    return ambient_c + power_w * rTh_;
}

double
ThermalModel::step(double power_w, double ambient_c, double dt_sec)
{
    SC_ASSERT(dt_sec >= 0.0, "ThermalModel: negative step");
    const double target = steadyState(power_w, ambient_c);
    const double alpha = std::exp(-dt_sec / timeConstant());
    tempC_ = target + (tempC_ - target) * alpha;
    return tempC_;
}

} // namespace solarcore::cpu
