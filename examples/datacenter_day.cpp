/**
 * @file
 * Datacenter scenario: an hour-by-hour operations report for a
 * solar-assisted compute node.
 *
 * Motivated by the paper's introduction (solar-powered datacenters):
 * simulate one day at a chosen site, print an hourly dashboard of
 * available vs harvested power and the running grid/solar energy mix,
 * then estimate the avoided grid energy and CO2 for a month of such
 * days.
 *
 *   $ ./datacenter_day [AZ|CO|NC|TN] [Jan|Apr|Jul|Oct]
 */

#include <cstring>
#include <iostream>

#include "core/solarcore.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

solar::SiteId
parseSite(const char *arg)
{
    for (auto site : solar::allSites())
        if (std::strcmp(arg, solar::siteName(site)) == 0)
            return site;
    std::cerr << "unknown site '" << arg << "', using AZ\n";
    return solar::SiteId::AZ;
}

solar::Month
parseMonth(const char *arg)
{
    for (auto month : solar::allMonths())
        if (std::strcmp(arg, solar::monthName(month)) == 0)
            return month;
    std::cerr << "unknown month '" << arg << "', using Jul\n";
    return solar::Month::Jul;
}

} // namespace

int
main(int argc, char **argv)
{
    const solar::SiteId site =
        argc > 1 ? parseSite(argv[1]) : solar::SiteId::AZ;
    const solar::Month month =
        argc > 2 ? parseMonth(argv[2]) : solar::Month::Jul;

    const pv::PvModule module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(site, month, 7);

    core::SimConfig cfg;
    cfg.policy = core::PolicyKind::MpptOpt;
    cfg.recordTimeline = true;
    const auto day =
        core::simulateDay(module, trace, workload::WorkloadId::ML2, cfg);

    std::cout << "=== solar-assisted node, "
              << solar::siteInfo(site).location << ", mid-"
              << solar::monthName(month) << " ===\n\n";

    TextTable t;
    t.header({"hour", "avg avail [W]", "avg drawn [W]", "source"});
    const auto &tl = day.timeline;
    std::size_t i = 0;
    while (i < tl.size()) {
        const int hour = static_cast<int>(tl[i].minute / 60.0);
        double avail = 0.0;
        double drawn = 0.0;
        int n = 0;
        int solar_minutes = 0;
        while (i < tl.size() &&
               static_cast<int>(tl[i].minute / 60.0) == hour) {
            avail += tl[i].budgetW;
            drawn += tl[i].consumedW;
            solar_minutes += tl[i].onSolar;
            ++n;
            ++i;
        }
        const double solar_frac = static_cast<double>(solar_minutes) / n;
        t.row({std::to_string(hour) + ":00",
               TextTable::num(avail / n, 1), TextTable::num(drawn / n, 1),
               solar_frac > 0.5 ? "solar" : "grid"});
    }
    t.print(std::cout);

    // Monthly projection: same day repeated, US-average grid intensity.
    const double kwh_saved_per_day = day.solarEnergyWh / 1000.0;
    const double co2_kg_per_kwh = 0.4;
    std::cout << "\nday summary: " << TextTable::num(day.solarEnergyWh, 0)
              << " Wh solar, " << TextTable::num(day.gridEnergyWh, 0)
              << " Wh grid (" << TextTable::pct(day.effectiveFraction)
              << " of the day on solar)\n"
              << "30-day projection: "
              << TextTable::num(30.0 * kwh_saved_per_day, 1)
              << " kWh of grid energy avoided, ~"
              << TextTable::num(30.0 * kwh_saved_per_day * co2_kg_per_kwh,
                                1)
              << " kg CO2\n";
    return 0;
}
