/**
 * @file
 * Panel designer: size a PV array for a solar-powered compute node.
 *
 * Sweeps the array arrangement (1..3 parallel strings of BP3180N
 * modules) at a chosen site and reports, per configuration, the green
 * PTP, utilization and marginal benefit -- the sizing question a
 * deployment of the paper's system would face: more panel raises the
 * harvest but saturates once the chip's maximum draw becomes the
 * bottleneck.
 *
 *   $ ./panel_designer [AZ|CO|NC|TN]
 */

#include <cstring>
#include <iostream>

#include "core/solarcore.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main(int argc, char **argv)
{
    solar::SiteId site = solar::SiteId::NC;
    if (argc > 1) {
        for (auto s : solar::allSites())
            if (std::strcmp(argv[1], solar::siteName(s)) == 0)
                site = s;
    }

    const pv::PvModule module = pv::buildBp3180n();
    std::cout << "=== PV array sizing at " << solar::siteInfo(site).location
              << " (BP3180N modules, workload ML2, 4-month average) ===\n";

    TextTable t;
    t.header({"array", "nameplate [W]", "avg solar Wh/day", "utilization",
              "PTP [Tinstr/day]", "marginal PTP per module"});

    double prev_ptp = 0.0;
    for (int parallel = 1; parallel <= 3; ++parallel) {
        double wh = 0.0;
        double util = 0.0;
        double ptp = 0.0;
        for (auto month : solar::allMonths()) {
            const auto trace = solar::generateDayTrace(site, month, 1);
            core::SimConfig cfg;
            cfg.policy = core::PolicyKind::MpptOpt;
            cfg.modulesParallel = parallel;
            const auto r = core::simulateDay(module, trace,
                                             workload::WorkloadId::ML2,
                                             cfg);
            wh += r.solarEnergyWh / 4.0;
            util += r.utilization / 4.0;
            ptp += r.solarInstructions / 4.0;
        }
        const double marginal =
            prev_ptp > 0.0 ? (ptp - prev_ptp) / 1e12 : ptp / 1e12;
        t.row({std::string("1s x ") + std::to_string(parallel) + "p",
               TextTable::num(180.0 * parallel, 0), TextTable::num(wh, 0),
               TextTable::pct(util), TextTable::num(ptp / 1e12, 1),
               TextTable::num(marginal, 1)});
        prev_ptp = ptp;
    }
    t.print(std::cout);

    std::cout << "\nutilization falls as the array outgrows the chip's "
                 "maximum draw: past that point extra modules only buy "
                 "longer effective duration at dawn/dusk.\n";
    return 0;
}
