/**
 * @file
 * Policy explorer: compare the paper's four power-management schemes
 * on one day and workload of your choice.
 *
 * Runs Fixed-Power (at its best budget from a quick sweep), MPPT&IC,
 * MPPT&RR and MPPT&Opt plus the Battery-U/L bounds, and prints a
 * side-by-side comparison -- a single-day, single-workload version of
 * the paper's Figures 16-21.
 *
 *   $ ./policy_explorer [AZ|CO|NC|TN] [Jan|Apr|Jul|Oct] [workload]
 *   $ ./policy_explorer NC Apr HM2
 */

#include <cstring>
#include <iostream>

#include "core/solarcore.hpp"
#include "util/table.hpp"

using namespace solarcore;

namespace {

template <typename Enum, typename Range, typename NameFn>
Enum
parseOr(const char *arg, const Range &range, NameFn name, Enum fallback)
{
    if (arg) {
        for (auto v : range)
            if (std::strcmp(arg, name(v)) == 0)
                return v;
        std::cerr << "unknown argument '" << arg << "', using default\n";
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto site = parseOr(argc > 1 ? argv[1] : nullptr,
                              solar::allSites(), solar::siteName,
                              solar::SiteId::AZ);
    const auto month = parseOr(argc > 2 ? argv[2] : nullptr,
                               solar::allMonths(), solar::monthName,
                               solar::Month::Apr);
    const auto wl = parseOr(argc > 3 ? argv[3] : nullptr,
                            workload::allWorkloads(),
                            workload::workloadName,
                            workload::WorkloadId::HM2);

    const pv::PvModule module = pv::buildBp3180n();
    const auto trace = solar::generateDayTrace(site, month, 1);

    std::cout << "=== policy comparison: "
              << solar::siteInfo(site).location << ", mid-"
              << solar::monthName(month) << ", workload "
              << workload::workloadName(wl) << " ===\n";

    auto run = [&](core::PolicyKind policy, double budget) {
        core::SimConfig cfg;
        cfg.policy = policy;
        cfg.fixedBudgetW = budget;
        return core::simulateDay(module, trace, wl, cfg);
    };

    // Give Fixed-Power its best budget from a sweep, as the paper does.
    double best_budget = 25.0;
    core::DayResult best_fixed;
    for (double b : {25.0, 50.0, 75.0, 100.0, 125.0}) {
        const auto r = run(core::PolicyKind::FixedPower, b);
        if (r.solarInstructions > best_fixed.solarInstructions) {
            best_fixed = r;
            best_budget = b;
        }
    }

    const auto ic = run(core::PolicyKind::MpptIc, 0.0);
    const auto rr = run(core::PolicyKind::MpptRr, 0.0);
    const auto opt = run(core::PolicyKind::MpptOpt, 0.0);

    core::SimConfig bcfg;
    const auto bl = core::simulateBatteryDay(module, trace, wl,
                                             power::kBatteryLowerBound,
                                             bcfg);
    const auto bu = core::simulateBatteryDay(module, trace, wl,
                                             power::kBatteryUpperBound,
                                             bcfg);

    TextTable t;
    t.header({"scheme", "solar Wh", "utilization", "PTP [Tinstr]",
              "vs MPPT&Opt"});
    auto row = [&](const char *name, double wh, double util, double ptp) {
        t.row({name, TextTable::num(wh, 0), TextTable::pct(util),
               TextTable::num(ptp / 1e12, 1),
               TextTable::pct(ptp / opt.solarInstructions)});
    };
    row((std::string("Fixed-Power @") + TextTable::num(best_budget, 0) +
         "W").c_str(),
        best_fixed.solarEnergyWh, best_fixed.utilization,
        best_fixed.solarInstructions);
    row("MPPT&IC", ic.solarEnergyWh, ic.utilization, ic.solarInstructions);
    row("MPPT&RR", rr.solarEnergyWh, rr.utilization, rr.solarInstructions);
    row("MPPT&Opt", opt.solarEnergyWh, opt.utilization,
        opt.solarInstructions);
    row("Battery-L", bl.consumedWh, bl.utilization, bl.instructions);
    row("Battery-U", bu.consumedWh, bu.utilization, bu.instructions);
    t.print(std::cout);

    std::cout << "\nSolarCore (MPPT&Opt) vs best fixed budget: +"
              << TextTable::num((opt.solarInstructions /
                                     best_fixed.solarInstructions -
                                 1.0) *
                                    100.0,
                                1)
              << "% PTP\n";
    return 0;
}
