/**
 * @file
 * Solar farm scenario: geographic diversity across the paper's four
 * MIDC sites, using the fleet-level API.
 *
 * The paper's introduction motivates SolarCore with datacenter-scale
 * solar deployments (Google/Microsoft/Yahoo farms). This example
 * simulates one SolarCore node at each of the four stations for the
 * same calendar day and shows what a geographically distributed fleet
 * buys: local cloud fronts decorrelate, so the fleet's combined green
 * output is far steadier than any single node's.
 *
 *   $ ./solar_farm [Jan|Apr|Jul|Oct]
 */

#include <cstring>
#include <iostream>

#include "core/solarcore.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main(int argc, char **argv)
{
    solar::Month month = solar::Month::Apr;
    if (argc > 1) {
        for (auto m : solar::allMonths())
            if (std::strcmp(argv[1], solar::monthName(m)) == 0)
                month = m;
    }

    const pv::PvModule module = pv::buildBp3180n();
    std::cout << "=== four-site SolarCore fleet, mid-"
              << solar::monthName(month) << " ===\n\n";

    std::vector<core::NodeSpec> specs;
    for (auto site : solar::allSites()) {
        core::NodeSpec spec;
        spec.site = site;
        spec.month = month;
        spec.weatherSeed = 11;
        spec.workload = workload::WorkloadId::ML2;
        specs.push_back(spec);
    }
    const auto fleet = core::simulateFleetDay(module, specs);

    TextTable t;
    t.header({"site", "solar Wh", "utilization", "effective duration",
              "green PTP [Tinstr]"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &r = fleet.nodes[i];
        t.row({solar::siteInfo(specs[i].site).location,
               TextTable::num(r.solarEnergyWh, 0),
               TextTable::pct(r.utilization),
               TextTable::pct(r.effectiveFraction),
               TextTable::num(r.solarInstructions / 1e12, 1)});
    }
    t.print(std::cout);

    std::cout << "\nfleet totals: "
              << TextTable::num(fleet.totalSolarWh, 0) << " Wh solar, "
              << TextTable::num(fleet.totalGridWh, 0) << " Wh grid ("
              << TextTable::pct(fleet.greenFraction)
              << " green by energy), fleet utilization "
              << TextTable::pct(fleet.fleetUtilization) << "\n"
              << "\nper-minute variability (stddev/mean) of green "
                 "power:\n"
              << "  single node:             "
              << TextTable::pct(fleet.singleNodeCov) << "\n"
              << "  four-site fleet average: "
              << TextTable::pct(fleet.fleetCov) << "\n"
              << "geographic diversity smooths the green supply the way "
                 "a battery would, with zero storage.\n";
    return 0;
}
