/**
 * @file
 * Quickstart: simulate one solar-powered day.
 *
 * Builds the paper's setup -- one BP3180N 180 W module direct-coupled
 * to an 8-core chip -- generates a Phoenix April day of weather, runs
 * SolarCore (MPPT with throughput-power-ratio load adaptation) and
 * prints the headline metrics.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "core/solarcore.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main()
{
    // 1. The PV source: a BP3180N module calibrated to its datasheet.
    const pv::PvModule module = pv::buildBp3180n();

    // 2. One day of weather: Phoenix (MIDC station PFCI), mid-April.
    const solar::SolarTrace trace =
        solar::generateDayTrace(solar::SiteId::AZ, solar::Month::Apr,
                                /*seed=*/2026);
    std::cout << "daytime insolation: "
              << TextTable::num(trace.insolationKwhPerM2(), 2)
              << " kWh/m^2, peak irradiance "
              << TextTable::num(trace.peakIrradiance(), 0) << " W/m^2\n";

    // 3. Run SolarCore for the day on the HM2 workload mix.
    core::SimConfig cfg;
    cfg.policy = core::PolicyKind::MpptOpt;
    const core::DayResult day =
        core::simulateDay(module, trace, workload::WorkloadId::HM2, cfg);

    // 4. Report.
    std::cout << "harvestable solar energy: "
              << TextTable::num(day.mppEnergyWh, 0) << " Wh\n"
              << "energy drawn from panel:  "
              << TextTable::num(day.solarEnergyWh, 0) << " Wh ("
              << TextTable::pct(day.utilization) << " utilization)\n"
              << "grid backup energy:       "
              << TextTable::num(day.gridEnergyWh, 0) << " Wh\n"
              << "solar-powered time:       "
              << TextTable::pct(day.effectiveFraction) << " of the day\n"
              << "instructions on solar:    "
              << TextTable::num(day.solarInstructions / 1e12, 1)
              << " x 10^12\n"
              << "avg MPP tracking error:   "
              << TextTable::pct(day.avgTrackingError) << "\n";
    return 0;
}
