/**
 * @file
 * Annual deployment report: one representative day per calendar month
 * (weather statistics interpolated between the paper's four calibrated
 * anchors), scaled to a yearly carbon / cost statement — the
 * "sustainable computing" bottom line the paper's introduction argues
 * for.
 *
 *   $ ./annual_report [AZ|CO|NC|TN]
 */

#include <cstring>
#include <iostream>

#include "core/solarcore.hpp"
#include "solar/geometry.hpp"
#include "util/table.hpp"

using namespace solarcore;

int
main(int argc, char **argv)
{
    solar::SiteId site = solar::SiteId::AZ;
    if (argc > 1) {
        for (auto s : solar::allSites())
            if (std::strcmp(argv[1], solar::siteName(s)) == 0)
                site = s;
    }
    const auto &info = solar::siteInfo(site);
    const pv::PvModule module = pv::buildBp3180n();

    std::cout << "=== annual SolarCore report, " << info.location
              << " (workload ML2, one representative day per month) "
                 "===\n\n";

    static const char *kMonthNames[12] = {"Jan", "Feb", "Mar", "Apr",
                                          "May", "Jun", "Jul", "Aug",
                                          "Sep", "Oct", "Nov", "Dec"};
    TextTable t;
    t.header({"month", "insolation kWh/m2", "solar Wh", "grid Wh",
              "utilization"});

    double year_solar_wh = 0.0;
    double year_grid_wh = 0.0;
    core::DayResult typical; // mid-year day kept for the carbon report
    for (int month = 1; month <= 12; ++month) {
        const int doy = solar::dayOfYear(month, 15);
        const auto wx = solar::weatherParamsForDay(site, doy);
        const auto trace = solar::generateCustomTrace(
            info.latitudeDeg, doy, wx, info.clearnessFactor,
            100 + static_cast<std::uint64_t>(month));
        core::SimConfig cfg;
        cfg.dtSeconds = 30.0;
        const auto day = core::simulateDay(module, trace,
                                           workload::WorkloadId::ML2,
                                           cfg);
        year_solar_wh += day.solarEnergyWh * 30.4;
        year_grid_wh += day.gridEnergyWh * 30.4;
        if (month == 6)
            typical = day;
        t.row({kMonthNames[month - 1],
               TextTable::num(trace.insolationKwhPerM2(), 2),
               TextTable::num(day.solarEnergyWh, 0),
               TextTable::num(day.gridEnergyWh, 0),
               TextTable::pct(day.utilization)});
    }
    t.print(std::cout);

    const core::GridContext grid;
    std::cout << "\nyearly totals: "
              << TextTable::num(year_solar_wh / 1000.0, 1)
              << " kWh solar, " << TextTable::num(year_grid_wh / 1000.0, 1)
              << " kWh grid\n"
              << "CO2 avoided: "
              << TextTable::num(year_solar_wh / 1000.0 * grid.co2KgPerKwh,
                                1)
              << " kg/year;  utility savings: $"
              << TextTable::num(year_solar_wh / 1000.0 *
                                    grid.gridUsdPerKwh,
                                0)
              << "/year;  avoided battery amortization: $"
              << TextTable::num(grid.batteryUsd / grid.batteryLifeYears, 0)
              << "/year (the paper's storage-free argument)\n";
    return 0;
}
